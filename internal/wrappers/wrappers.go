// Package wrappers provides the packaged library-wrapper set of §4.1: C
// source defining ccuredWrapperOf wrappers for commonly used C library
// functions, written against the helper functions __ptrof (strip metadata
// for the underlying call), __mkptr (rebuild a fat pointer from a result
// and a model pointer), __verify_nul (check NUL-termination within bounds),
// and __endof (remaining capacity).
//
// Appending Source to a program makes the curing transformation redirect
// its calls to these functions through the wrappers (except inside the
// wrappers themselves, whose calls reach the real library). A single
// wrapper text works with any set of inferred qualifiers, exactly as the
// paper describes.
package wrappers

import "strings"

// Helpers declares the wrapper helper functions (provided by the runtime).
const Helpers = `
extern char *__ptrof(char *p);
extern char *__mkptr(char *raw, char *model);
extern void __verify_nul(char *s);
extern unsigned int __endof(char *p);
`

// Source is the packaged wrapper set. Each wrapper validates the
// preconditions the library relies on, strips metadata for the call, and
// rebuilds fat pointers for results.
const Source = Helpers + `
#pragma ccuredWrapperOf("strchr_wrapper", "strchr")
char *strchr_wrapper(char *str, int chr) {
    char *result;
    __verify_nul(str);                 /* check for NUL termination */
    result = strchr(__ptrof(str), chr);
    return __mkptr(result, str);       /* wide pointer for the result */
}

#pragma ccuredWrapperOf("strrchr_wrapper", "strrchr")
char *strrchr_wrapper(char *str, int chr) {
    char *result;
    __verify_nul(str);
    result = strrchr(__ptrof(str), chr);
    return __mkptr(result, str);
}

#pragma ccuredWrapperOf("strstr_wrapper", "strstr")
char *strstr_wrapper(char *hay, char *needle) {
    char *result;
    __verify_nul(hay);
    __verify_nul(needle);
    result = strstr(__ptrof(hay), __ptrof(needle));
    return __mkptr(result, hay);
}

#pragma ccuredWrapperOf("strlen_wrapper", "strlen")
int strlen_wrapper(char *s) {
    __verify_nul(s);
    return strlen(__ptrof(s));
}

#pragma ccuredWrapperOf("strcpy_wrapper", "strcpy")
char *strcpy_wrapper(char *dst, char *src) {
    __verify_nul(src);
    if (__endof(dst) != 0) {
        /* precondition: dst must have room for src plus the NUL */
        unsigned int need = (unsigned int)strlen(__ptrof(src)) + 1;
        char *lim = dst + need;
        if ((unsigned int)lim > __endof(dst)) {
            /* force the bounds failure through a checked write */
            dst[need - 1] = 0;
        }
    }
    strcpy(__ptrof(dst), __ptrof(src));
    return dst;
}

#pragma ccuredWrapperOf("strcmp_wrapper", "strcmp")
int strcmp_wrapper(char *a, char *b) {
    __verify_nul(a);
    __verify_nul(b);
    return strcmp(__ptrof(a), __ptrof(b));
}

#pragma ccuredWrapperOf("atoi_wrapper", "atoi")
int atoi_wrapper(char *s) {
    __verify_nul(s);
    return atoi(__ptrof(s));
}

#pragma ccuredWrapperOf("puts_wrapper", "puts")
int puts_wrapper(char *s) {
    __verify_nul(s);
    return puts(__ptrof(s));
}
`

// Names lists the functions covered by the packaged wrappers.
func Names() []string {
	var out []string
	for _, line := range strings.Split(Source, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "#pragma ccuredWrapperOf("); ok {
			parts := strings.Split(rest, ",")
			if len(parts) == 2 {
				name := strings.Trim(strings.TrimSuffix(strings.TrimSpace(parts[1]), ")"), "\"")
				out = append(out, name)
			}
		}
	}
	return out
}
