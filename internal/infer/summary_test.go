package infer

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"gocured/internal/cil"
	"gocured/internal/corpus"
	"gocured/internal/cparse"
	"gocured/internal/diag"
	"gocured/internal/sema"
)

// memSource is an in-memory SummarySource for tests.
type memSource struct {
	m     map[string]*FuncSummary
	loads int
	saves int
}

func newMemSource() *memSource { return &memSource{m: make(map[string]*FuncSummary)} }

func memKey(fn string, body, decls [sha256.Size]byte) string {
	return fn + ":" + hex.EncodeToString(body[:]) + ":" + hex.EncodeToString(decls[:])
}

func (s *memSource) Load(fn string, body, decls [sha256.Size]byte) (*FuncSummary, bool) {
	sum, ok := s.m[memKey(fn, body, decls)]
	if ok {
		s.loads++
	}
	return sum, ok
}

func (s *memSource) Save(sum *FuncSummary, fn string, body, decls [sha256.Size]byte) {
	s.saves++
	s.m[memKey(fn, body, decls)] = sum
}

// lower runs the frontend on src, failing the test on errors.
func lower(t *testing.T, name, src string) (*cil.Program, *diag.List) {
	t.Helper()
	var d diag.List
	file := cparse.Parse(name, src, &d)
	unit := sema.Check(file, &d)
	prog := cil.Lower(unit, &d)
	if d.HasErrors() {
		t.Fatalf("%s: frontend errors:\n%v", name, d.Err())
	}
	return prog, &d
}

// resultSig renders a whole-Result signature strong enough to detect any
// divergence between a fresh whole-program solve and a summary-composed
// one: node creation order with types and solved kinds, every cast site's
// classification, the solved stats, and the split stats.
func resultSig(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "stats=%+v\nsplit=%+v\n", res.ComputeStats(), res.Split.Stats)
	for _, n := range res.Graph.Nodes {
		fmt.Fprintf(&b, "n%d %s k=%s f=%v%v%v%v\n", n.ID, n.Ty, n.Find().Kind,
			n.Find().Arith, n.Find().BadCast, n.Find().IntCast, n.Find().RttiNeed)
	}
	for _, c := range res.Casts {
		fmt.Fprintf(&b, "cast %s:%d:%d %s tile=%v tr=%v ww=%v %s -> %s\n",
			c.Pos.File, c.Pos.Line, c.Pos.Col, c.Class, c.TileOK, c.Trusted, c.WentWild, c.From, c.To)
	}
	return b.String()
}

// goldenSources returns every C source the golden test composes over: the
// micro programs, every corpus program, and the C snippets embedded in the
// examples' Go files.
func goldenSources(t *testing.T) map[string]string {
	t.Helper()
	srcs := map[string]string{
		"micro_ptr.c": `
int g;
int *gp = &g;
int sum(int *p, int n) {
  int i; int s;
  s = 0;
  for (i = 0; i < n; i++) s = s + p[i];
  return s;
}
int main(void) {
  int a[4];
  int i;
  for (i = 0; i < 4; i++) a[i] = i;
  return sum(a, 4);
}`,
		"micro_cast.c": `
struct S { int x; int *p; };
struct T { int x; int *p; int extra; };
int main(void) {
  struct T t;
  struct S *s;
  t.x = 1; t.extra = 2; t.p = &t.x;
  s = (struct S *)&t;
  return s->x + *(s->p);
}`,
		"micro_wild.c": `
int main(void) {
  int x; char *c;
  x = 5;
  c = (char *)&x;
  return c[0];
}`,
	}
	for _, p := range corpus.All() {
		srcs["corpus_"+p.Name+".c"] = p.Source
	}
	// Extract C snippets embedded as Go raw strings in examples/.
	re := regexp.MustCompile("(?s)`([^`]*)`")
	matches, _ := filepath.Glob("../../examples/*/main.go")
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		for i, m := range re.FindAllStringSubmatch(string(data), -1) {
			snippet := m[1]
			if !strings.Contains(snippet, "int") || !strings.Contains(snippet, "(") {
				continue
			}
			var d diag.List
			file := cparse.Parse("snippet.c", snippet, &d)
			unit := sema.Check(file, &d)
			cil.Lower(unit, &d)
			if d.HasErrors() {
				continue // not a compilable C snippet (usage text etc.)
			}
			srcs[fmt.Sprintf("example_%s_%d.c", filepath.Base(filepath.Dir(path)), i)] = snippet
		}
	}
	return srcs
}

// TestSummaryGolden asserts the tentpole invariant: per-function summaries
// recorded from one parse and replayed against a fresh parse compose to a
// bit-identical inference Result (same node IDs, kinds, casts, stats) as
// the whole-program solve.
func TestSummaryGolden(t *testing.T) {
	for name, src := range goldenSources(t) {
		for _, opts := range []Options{{}, {TrustBadCasts: true}, {NoRTTI: true}, {SplitAll: true}} {
			label := fmt.Sprintf("%s/%+v", name, opts)

			progA, dA := lower(t, name, src)
			want := resultSig(Infer(progA, opts, dA))

			mem := newMemSource()
			progB, dB := lower(t, name, src)
			resB, stB := InferIncremental(progB, opts, dB, mem)
			if got := resultSig(resB); got != want {
				t.Fatalf("%s: recording pass diverged from whole-program solve:\n--- want\n%s\n--- got\n%s", label, want, got)
			}
			if stB.Recured != stB.Funcs || stB.Loaded != 0 {
				t.Fatalf("%s: cold pass stats %+v, want all recured", label, stB)
			}

			progC, dC := lower(t, name, src)
			resC, stC := InferIncremental(progC, opts, dC, mem)
			if got := resultSig(resC); got != want {
				t.Fatalf("%s: replay pass diverged from whole-program solve:\n--- want\n%s\n--- got\n%s", label, want, got)
			}
			if stC.Loaded != stC.Funcs-stC.Unstorable || stC.Recured != stC.Unstorable {
				t.Fatalf("%s: warm pass stats %+v, want everything storable loaded", label, stC)
			}
			if stC.Unstorable > 0 {
				t.Logf("%s: %d/%d functions unstorable", label, stC.Unstorable, stC.Funcs)
			}
		}
	}
}

// TestSummaryOneLineEdit asserts the incrementality payoff: editing one
// function body re-cures only that function, and the edited unit's result
// still matches its whole-program solve.
func TestSummaryOneLineEdit(t *testing.T) {
	for _, p := range corpus.All() {
		if !strings.Contains(p.Source, "int i;") {
			continue
		}
		opts := Options{TrustBadCasts: p.TrustBadCasts}
		mem := newMemSource()
		progA, dA := lower(t, p.Name, p.Source)
		InferIncremental(progA, opts, dA, mem)

		edited := strings.Replace(p.Source, "int i;", "int i; if (0) { i = 1; }", 1)
		progB, dB := lower(t, p.Name, edited)
		resB, stB := InferIncremental(progB, opts, dB, mem)

		progC, dC := lower(t, p.Name, edited)
		want := resultSig(Infer(progC, opts, dC))
		if got := resultSig(resB); got != want {
			t.Fatalf("%s: edited incremental result diverged from whole-program solve", p.Name)
		}
		maxRecure := 1 + stB.Unstorable
		if stB.Recured > maxRecure {
			t.Errorf("%s: one-line edit re-cured %d of %d functions (want <= %d)",
				p.Name, stB.Recured, stB.Funcs, maxRecure)
		}
		if stB.Funcs >= 10 && float64(stB.Recured)/float64(stB.Funcs) >= 0.10 {
			t.Errorf("%s: one-line edit re-cured %.0f%% of functions, want < 10%%",
				p.Name, 100*float64(stB.Recured)/float64(stB.Funcs))
		}
	}
}
