package gocured_test

// One benchmark per table/figure of the paper's evaluation (see DESIGN.md's
// per-experiment index). Each benchmark regenerates its table; run
//
//	go test -bench=. -benchmem
//
// or use cmd/ccbench for the formatted tables. The finer-grained
// BenchmarkRun benches time individual corpus programs per execution mode.

import (
	"testing"

	"gocured/internal/core"
	"gocured/internal/corpus"
	"gocured/internal/experiments"
	"gocured/internal/infer"
	"gocured/internal/interp"
)

var benchCfg = experiments.Config{Scale: 1}

func benchTable(b *testing.B, fn func(experiments.Config) *experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := fn(benchCfg)
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkCastClassification regenerates E1 (§3 cast statistics).
func BenchmarkCastClassification(b *testing.B) {
	benchTable(b, experiments.CastClassification)
}

// BenchmarkFig8Apache regenerates E2 (Figure 8, Apache modules).
func BenchmarkFig8Apache(b *testing.B) { benchTable(b, experiments.Fig8Apache) }

// BenchmarkFig9System regenerates E3 (Figure 9, system software).
func BenchmarkFig9System(b *testing.B) { benchTable(b, experiments.Fig9System) }

// BenchmarkIjpegRTTI regenerates E4 (ijpeg RTTI ablation).
func BenchmarkIjpegRTTI(b *testing.B) { benchTable(b, experiments.IjpegRTTI) }

// BenchmarkMicroSuite regenerates E5 (Spec/Olden/Ptrdist vs Purify/Valgrind).
func BenchmarkMicroSuite(b *testing.B) { benchTable(b, experiments.MicroSuite) }

// BenchmarkSplitOverhead regenerates E6 (all-split ablation).
func BenchmarkSplitOverhead(b *testing.B) { benchTable(b, experiments.SplitOverhead) }

// BenchmarkBindCasts regenerates E7 (bind cast statistics).
func BenchmarkBindCasts(b *testing.B) { benchTable(b, experiments.BindCasts) }

// BenchmarkSplitStats regenerates E8 (split inference statistics).
func BenchmarkSplitStats(b *testing.B) { benchTable(b, experiments.SplitStats) }

// BenchmarkExploits regenerates E9 (ftpd exploit prevention).
func BenchmarkExploits(b *testing.B) { benchTable(b, experiments.Exploits) }

// BenchmarkCompile times the whole pipeline (parse -> check -> lower ->
// infer -> cure) on the largest corpus program.
func BenchmarkCompile(b *testing.B) {
	p := corpus.ByName("bind")
	for i := 0; i < b.N; i++ {
		if _, err := core.Build("bind.c", p.Source, infer.Options{TrustBadCasts: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRun times representative corpus programs per execution mode
// (raw, cured, purify, valgrind) so individual slowdown ratios can be read
// straight off the -bench output.
func BenchmarkRun(b *testing.B) {
	programs := []string{"ijpeg", "olden-em3d", "spec-compress", "apache-webstone", "bind"}
	modes := []struct {
		name   string
		policy interp.Policy
	}{
		{"raw", interp.PolicyNone},
		{"cured", interp.PolicyCured},
		{"purify", interp.PolicyPurify},
		{"valgrind", interp.PolicyValgrind},
	}
	for _, name := range programs {
		p := corpus.ByName(name)
		u, err := core.Build(name+".c", corpus.WithScale(p, 1),
			infer.Options{TrustBadCasts: p.TrustBadCasts})
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range modes {
			b.Run(name+"/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var out *interp.Outcome
					var err error
					if m.policy == interp.PolicyCured {
						out, err = u.RunCured(interp.Config{})
					} else {
						out, err = u.RunRaw(m.policy, interp.Config{})
					}
					if err != nil {
						b.Fatal(err)
					}
					if out.Trap != nil {
						b.Fatalf("trap: %v", out.Trap)
					}
				}
			})
		}
	}
}
