package vm

import (
	"fmt"
	"math"

	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/qual"
)

// Compile lowers every function of prog to bytecode. Functions the
// compiler cannot lower (unexpected IR shapes) are skipped — the executor
// falls back to the tree backend per function, so a partial module is
// still semantically complete.
func Compile(prog *cil.Program, lay Layout) *Module {
	mod := &Module{
		Prog:   prog,
		ByFunc: make(map[*cil.Func]*FuncCode, len(prog.Funcs)),
	}
	globalIdx := make(map[*cil.Var]int32)
	for _, fn := range prog.Funcs {
		fc, err := compileFunc(fn, lay, mod, globalIdx)
		if err != nil {
			mod.Skipped = append(mod.Skipped, fn.Name)
			continue
		}
		mod.Funcs = append(mod.Funcs, fc)
		mod.ByFunc[fn] = fc
	}
	// Link direct-call targets now that every function has compiled (the
	// callee may appear later in the file, or be recursive).
	for _, fc := range mod.Funcs {
		for i := range fc.Calls {
			if f := fc.Calls[i].Fn; f != nil {
				fc.Calls[i].FC = mod.ByFunc[f] // nil if skipped: tree fallback
			}
		}
	}
	return mod
}

// compileErr aborts one function's compilation.
type compileErr struct{ msg string }

func compileFunc(fn *cil.Func, lay Layout, mod *Module, globalIdx map[*cil.Var]int32) (fc *FuncCode, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileErr); ok {
				err = fmt.Errorf("compile %s: %s", fn.Name, ce.msg)
				return
			}
			err = fmt.Errorf("compile %s: %v", fn.Name, r)
		}
	}()
	size, offsets := FrameLayout(fn, lay)
	c := &fnCompiler{
		fn:        fn,
		lay:       lay,
		mod:       mod,
		globalIdx: globalIdx,
		offsets:   offsets,
		fc:        &FuncCode{Fn: fn, FrameSize: size},
		constIdx:  make(map[int64]int32),
		floatIdx:  make(map[float64]int32),
		strIdx:    make(map[string]int32),
		nameIdx:   make(map[string]int32),
		typeIdx:   make(map[*ctypes.Type]int32),
		posIdx:    make(map[diag.Pos]int32),
		convIdx:   make(map[ConvInfo]int32),
		binIdx:    make(map[BinInfo]int32),
		unIdx:     make(map[UnInfo]int32),
	}
	for _, p := range fn.Params {
		c.fc.ParamOffs = append(c.fc.ParamOffs, offsets[p])
	}
	c.block(fn.Body)
	c.fc.NumRegs = int(c.maxReg)
	if c.fc.NumRegs == 0 {
		c.fc.NumRegs = 1
	}
	return c.fc, nil
}

type loopCtx struct {
	breaks     []int // OpJump indices to patch to the loop/switch end
	contJumps  []int // OpJump indices to patch to the post-block head
	contTarget int   // backward continue target (-1: patch contJumps)
}

type fnCompiler struct {
	fn        *cil.Func
	lay       Layout
	mod       *Module
	globalIdx map[*cil.Var]int32
	offsets   map[*cil.Var]uint32
	fc        *FuncCode

	top, maxReg int32

	// breakables is the stack Break binds to (loops and switches); loops
	// additionally binds Continue.
	breakables []*loopCtx
	loops      []*loopCtx

	// barrier is the highest code index handed out as a jump target; the
	// peephole fusers never merge across it.
	barrier int

	constIdx map[int64]int32
	floatIdx map[float64]int32
	strIdx   map[string]int32
	nameIdx  map[string]int32
	typeIdx  map[*ctypes.Type]int32
	posIdx   map[diag.Pos]int32
	convIdx  map[ConvInfo]int32
	binIdx   map[BinInfo]int32
	unIdx    map[UnInfo]int32
}

func (c *fnCompiler) fail(format string, args ...any) {
	panic(compileErr{fmt.Sprintf(format, args...)})
}

// ---- registers ----

func (c *fnCompiler) alloc() int32 {
	r := c.top
	c.top++
	if c.top > c.maxReg {
		c.maxReg = c.top
	}
	return r
}

func (c *fnCompiler) release(to int32) { c.top = to }

// ---- emission ----

func (c *fnCompiler) emit(i Instr) int {
	c.fc.Code = append(c.fc.Code, i)
	return len(c.fc.Code) - 1
}

// here hands out the current position as a (future) jump target; it also
// raises the fusion barrier, because once an index is a label the
// instruction emitted there must stay a separate dispatch.
func (c *fnCompiler) here() int32 {
	c.barrier = len(c.fc.Code)
	return int32(len(c.fc.Code))
}

func (c *fnCompiler) patch(at int) { c.fc.Code[at].A = c.here() }

// fusable reports whether the next instruction may merge into the last
// emitted one: there is a last instruction, and no label points at the
// slot between them (a label at the last instruction itself is fine —
// jumping there runs the fused pair, exactly what the split pair did).
func (c *fnCompiler) fusable() bool {
	return len(c.fc.Code) > 0 && c.barrier < len(c.fc.Code)
}

// ---- pools ----

func (c *fnCompiler) constI(v int64) int32 {
	if i, ok := c.constIdx[v]; ok {
		return i
	}
	i := int32(len(c.fc.Consts))
	c.fc.Consts = append(c.fc.Consts, v)
	c.constIdx[v] = i
	return i
}

func (c *fnCompiler) floatI(v float64) int32 {
	if i, ok := c.floatIdx[v]; ok {
		return i
	}
	i := int32(len(c.fc.Floats))
	c.fc.Floats = append(c.fc.Floats, v)
	c.floatIdx[v] = i
	return i
}

func (c *fnCompiler) strI(s string) int32 {
	if i, ok := c.strIdx[s]; ok {
		return i
	}
	i := int32(len(c.fc.Strs))
	c.fc.Strs = append(c.fc.Strs, s)
	c.strIdx[s] = i
	return i
}

func (c *fnCompiler) nameI(s string) int32 {
	if i, ok := c.nameIdx[s]; ok {
		return i
	}
	i := int32(len(c.fc.Names))
	c.fc.Names = append(c.fc.Names, s)
	c.nameIdx[s] = i
	return i
}

func (c *fnCompiler) typeI(t *ctypes.Type) int32 {
	if i, ok := c.typeIdx[t]; ok {
		return i
	}
	i := int32(len(c.fc.Types))
	c.fc.Types = append(c.fc.Types, t)
	c.fc.TySizes = append(c.fc.TySizes, scalarSize(c.lay, t))
	c.fc.TyDescs = append(c.fc.TyDescs, TyDesc{
		Kind:   t.Kind,
		Size:   int32(t.Size),
		Signed: t.Signed,
		Split:  c.lay.IsSplit(t),
		PKind:  c.lay.KindOf(t),
	})
	c.typeIdx[t] = i
	return i
}

func (c *fnCompiler) posI(p diag.Pos) int32 {
	if i, ok := c.posIdx[p]; ok {
		return i
	}
	i := int32(len(c.fc.Poss))
	c.fc.Poss = append(c.fc.Poss, p)
	c.posIdx[p] = i
	return i
}

func (c *fnCompiler) convI(cv ConvInfo) int32 {
	if i, ok := c.convIdx[cv]; ok {
		return i
	}
	i := int32(len(c.fc.Convs))
	c.fc.Convs = append(c.fc.Convs, cv)
	c.convIdx[cv] = i
	return i
}

func (c *fnCompiler) binI(b BinInfo) int32 {
	if i, ok := c.binIdx[b]; ok {
		return i
	}
	i := int32(len(c.fc.Bins))
	c.fc.Bins = append(c.fc.Bins, b)
	c.binIdx[b] = i
	return i
}

func (c *fnCompiler) unI(u UnInfo) int32 {
	if i, ok := c.unIdx[u]; ok {
		return i
	}
	i := int32(len(c.fc.Uns))
	c.fc.Uns = append(c.fc.Uns, u)
	c.unIdx[u] = i
	return i
}

func (c *fnCompiler) globalI(v *cil.Var) int32 {
	if i, ok := c.globalIdx[v]; ok {
		return i
	}
	i := int32(len(c.mod.Globals))
	c.mod.Globals = append(c.mod.Globals, v)
	c.globalIdx[v] = i
	return i
}

func (c *fnCompiler) checkI(chk *cil.Check) int32 {
	c.fc.Checks = append(c.fc.Checks, chk)
	return int32(len(c.fc.Checks) - 1)
}

func (c *fnCompiler) callI(ci CallInfo) int32 {
	c.fc.Calls = append(c.fc.Calls, ci)
	return int32(len(c.fc.Calls) - 1)
}

// ---- statements ----

func (c *fnCompiler) block(b *cil.Block) {
	for _, s := range b.Stmts {
		c.stmt(s)
	}
}

// step emits the per-statement step charge; pos (when valid) is recorded
// after the step fires, matching the tree's order (the profiler samples
// inside step, attributing to the previous statement's line, and a
// step-limit trap reports the previous position too).
func (c *fnCompiler) step(pos diag.Pos) {
	a := int32(-1)
	if pos.IsValid() {
		a = c.posI(pos)
	}
	if c.fusable() {
		last := &c.fc.Code[len(c.fc.Code)-1]
		switch last.Op {
		case OpStoreLocal:
			*last = Instr{Op: OpStoreLocalStep, A: last.A, B: last.B, C: last.C, D: a}
			return
		case OpJumpFalse:
			// The step charges only on fall-through; the branch target is a
			// different statement with its own step (pending patches keep
			// pointing at this index).
			*last = Instr{Op: OpJumpFalseStep, A: last.A, B: last.B, C: a}
			return
		case OpCheck:
			*last = Instr{Op: OpCheckStep, B: last.B, C: last.C, D: a}
			return
		}
	}
	c.emit(Instr{Op: OpStep, A: a})
}

// condFalse emits the branch taken when register r is false. When r was
// produced by the instruction just emitted — an OpBin/OpBinConst whose
// value dies at the branch (If releases its condition registers
// immediately after) — the pair folds into one fused compare-and-branch;
// dropping the dead register write is unobservable.
func (c *fnCompiler) condFalse(r int32) int {
	if n := len(c.fc.Code) - 1; n >= 0 {
		last := c.fc.Code[n]
		if last.A == r {
			switch last.Op {
			case OpBin:
				c.fc.Code[n] = Instr{Op: OpJumpBinFalse, A: -1, B: last.B, C: last.C, D: last.D}
				return n
			case OpBinConst:
				c.fc.Code[n] = Instr{Op: OpJumpBinConstFalse, A: -1, B: last.B, C: last.C, D: last.D}
				return n
			case OpUn:
				if c.fc.Uns[last.C].Op == cil.OpNot {
					// if (!x): the Not was in place (B == A == r), so its
					// dropped write leaves the original operand in r.
					c.fc.Code[n] = Instr{Op: OpJumpTrue, A: -1, B: last.B}
					return n
				}
			}
		}
	}
	return c.emit(Instr{Op: OpJumpFalse, A: -1, B: r})
}

func (c *fnCompiler) stmt(s cil.Stmt) {
	mark := c.top
	defer c.release(mark)
	switch st := s.(type) {
	case *cil.Block:
		c.block(st)
	case *cil.SInstr:
		c.step(st.Ins.Position())
		c.instr(st.Ins)
	case *cil.If:
		c.step(diag.Pos{})
		r := c.expr(st.Cond)
		jf := c.condFalse(r)
		c.release(mark)
		c.block(st.Then)
		if st.Else != nil {
			j := c.emit(Instr{Op: OpJump, A: -1})
			c.patch(jf)
			c.block(st.Else)
			c.patch(j)
		} else {
			c.patch(jf)
		}
	case *cil.Loop:
		head := c.here()
		c.emit(Instr{Op: OpBackEdge})
		lc := &loopCtx{contTarget: int(head)}
		if st.Post != nil {
			lc.contTarget = -1
		}
		c.breakables = append(c.breakables, lc)
		c.loops = append(c.loops, lc)
		c.block(st.Body)
		if st.Post != nil {
			// Continue lands on the post block; a Continue *inside* the
			// post block behaves like normal completion (tree semantics),
			// so the post compiles with the loop head as its target.
			for _, j := range lc.contJumps {
				c.patch(j)
			}
			lc.contJumps = nil
			lc.contTarget = int(head)
			c.block(st.Post)
		}
		// The loop tail always jumps to the head's OpBackEdge; fusing the
		// charge into the jump (landing past it) saves a dispatch per
		// iteration. Nothing runs between the pair, so the order swap is
		// unobservable. First entry still falls through the OpBackEdge.
		c.emit(Instr{Op: OpJumpBack, A: head + 1})
		for _, j := range lc.breaks {
			c.patch(j)
		}
		c.breakables = c.breakables[:len(c.breakables)-1]
		c.loops = c.loops[:len(c.loops)-1]
	case *cil.Break:
		if len(c.breakables) == 0 {
			c.fail("break outside loop/switch")
		}
		bc := c.breakables[len(c.breakables)-1]
		bc.breaks = append(bc.breaks, c.emit(Instr{Op: OpJump, A: -1}))
	case *cil.Continue:
		if len(c.loops) == 0 {
			c.fail("continue outside loop")
		}
		lc := c.loops[len(c.loops)-1]
		if lc.contTarget >= 0 {
			// contTarget is always the loop head's OpBackEdge: fuse like
			// the loop tail does.
			c.emit(Instr{Op: OpJumpBack, A: int32(lc.contTarget) + 1})
		} else {
			lc.contJumps = append(lc.contJumps, c.emit(Instr{Op: OpJump, A: -1}))
		}
	case *cil.Return:
		c.step(st.Pos)
		if st.X == nil {
			c.emit(Instr{Op: OpReturn, A: -1})
			return
		}
		r := c.expr(st.X)
		c.conv(r, st.X.Type(), c.fn.Type.Fn.Ret, false)
		c.emit(Instr{Op: OpReturn, A: r})
	case *cil.Switch:
		c.step(diag.Pos{})
		r := c.expr(st.X)
		// Dispatch mirrors the tree: first matching non-default case wins,
		// otherwise the last default; case bodies then run sequentially
		// with C fallthrough until a break.
		type armPatch struct {
			jump int
			arm  int
		}
		var dispatch []armPatch
		dflt := -1
		for i, cs := range st.Cases {
			if cs.IsDefault {
				dflt = i
				continue
			}
			j := c.emit(Instr{Op: OpJumpEq, A: -1, B: r, C: c.constI(cs.Val)})
			dispatch = append(dispatch, armPatch{jump: j, arm: i})
		}
		miss := c.emit(Instr{Op: OpJump, A: -1})
		c.release(mark)
		sc := &loopCtx{}
		c.breakables = append(c.breakables, sc)
		armStart := make([]int32, len(st.Cases))
		for i, cs := range st.Cases {
			armStart[i] = c.here()
			for _, s2 := range cs.Body {
				c.stmt(s2)
			}
		}
		end := c.here()
		for _, d := range dispatch {
			c.fc.Code[d.jump].A = armStart[d.arm]
		}
		if dflt >= 0 {
			c.fc.Code[miss].A = armStart[dflt]
		} else {
			c.fc.Code[miss].A = end
		}
		for _, j := range sc.breaks {
			c.patch(j)
		}
		c.breakables = c.breakables[:len(c.breakables)-1]
	default:
		c.fail("unknown statement %T", s)
	}
}

// ---- instructions ----

func (c *fnCompiler) instr(i cil.Instr) {
	switch in := i.(type) {
	case *cil.Set:
		if in.LV.Ty.Kind == ctypes.Struct || in.LV.Ty.Kind == ctypes.Array {
			rhs, ok := in.RHS.(*cil.Lval)
			if !ok {
				c.fail("aggregate assignment from non-lvalue %T", in.RHS)
			}
			lhs := c.lval(in.LV)
			src := c.lval(rhs.LV)
			c.emit(Instr{Op: OpAggCopy, A: lhs, B: src, C: scalarSize(c.lay, in.LV.Ty)})
			return
		}
		r := c.expr(in.RHS)
		c.conv(r, in.RHS.Type(), in.LV.Ty, false)
		c.store(in.LV, r)
	case *cil.Call:
		c.call(in)
	case *cil.Check:
		c.checkInstr(in)
	default:
		c.fail("unknown instruction %T", i)
	}
}

func (c *fnCompiler) call(in *cil.Call) {
	// Arguments land in consecutive registers: every expr's result is the
	// first register allocated for it, so evaluating with no intermediate
	// release packs them at argBase..argBase+n-1.
	argBase := c.top
	argTypes := make([]*ctypes.Type, len(in.Args))
	for i, a := range in.Args {
		r := c.expr(a)
		if r != argBase+int32(i) {
			c.fail("argument register misplacement (%d != %d)", r, argBase+int32(i))
		}
		argTypes[i] = a.Type()
	}
	var retReg int32 = -1
	emitCall := func(op Op, b int32, ci CallInfo) {
		ci.ArgBase = argBase
		ci.NArgs = int32(len(in.Args))
		if in.Result != nil {
			retReg = c.alloc()
		}
		c.emit(Instr{Op: op, A: retReg, B: b, C: c.callI(ci)})
	}
	if fnc, ok := in.Fn.(*cil.FnConst); ok {
		if fn := c.mod.Prog.Lookup(fnc.Name); fn != nil {
			// Convert arguments to the parameter types in place (the tree
			// converts all args after evaluating all of them: identical).
			for i := range in.Args {
				if i < len(fn.Params) {
					c.conv(argBase+int32(i), argTypes[i], fn.Params[i].Type, false)
				}
			}
			emitCall(OpCallFn, -1, CallInfo{Fn: fn})
		} else {
			emitCall(OpCallNamed, -1, CallInfo{Name: fnc.Name})
		}
	} else {
		// Tree order: args first, then the function-pointer expression.
		f := c.expr(in.Fn)
		emitCall(OpCallPtr, f, CallInfo{ArgTypes: argTypes})
	}
	if in.Result != nil {
		ft := in.Fn.Type()
		if ft.IsPointer() {
			ft = ft.Elem
		}
		if ft.Kind == ctypes.Func {
			c.conv(retReg, ft.Fn.Ret, in.Result.Ty, false)
		}
		c.store(in.Result, retReg)
	}
}

func (c *fnCompiler) checkInstr(chk *cil.Check) {
	ci := c.checkI(chk)
	if c.fusable() && c.fc.Code[len(c.fc.Code)-1].Op == OpStep {
		last := &c.fc.Code[len(c.fc.Code)-1]
		*last = Instr{Op: OpStepCheckBegin, C: ci, D: last.A}
	} else {
		c.emit(Instr{Op: OpCheckBegin, C: ci})
	}
	r := c.expr(chk.Ptr)
	if chk.Kind == cil.CheckStackEscape {
		// The destination lvalue is evaluated only when the value really
		// is a live stack pointer (tree semantics: its loads don't happen
		// otherwise).
		skip := c.emit(Instr{Op: OpStackTest, A: -1, B: r})
		dst := c.lval(chk.DstLV)
		c.emit(Instr{Op: OpStackVerify, B: r, C: dst})
		c.patch(skip)
		return
	}
	if c.fusable() {
		if last := &c.fc.Code[len(c.fc.Code)-1]; last.Op == OpBin && last.A == r {
			// Checked pointer arithmetic (CheckSeq on p+i): compute and
			// judge in one dispatch; the register write was dead.
			*last = Instr{Op: OpBinCheck, A: ci, B: last.B, C: last.C, D: last.D}
			return
		}
	}
	c.emit(Instr{Op: OpCheck, B: r, C: ci})
}

// ---- expressions ----

// conv emits a conversion of register r from type `from` to `to` unless
// the tree's convert would be an identity (same static condition).
func (c *fnCompiler) conv(r int32, from, to *ctypes.Type, trusted bool) {
	if from == nil || to == nil || from == to {
		return
	}
	ci := c.convI(ConvInfo{From: from, To: to, Trusted: trusted})
	if c.fusable() {
		if last := &c.fc.Code[len(c.fc.Code)-1]; last.Op == OpLoad && last.A == r {
			// Loaded-then-converted value (*p widened or cast): the raw
			// load's register write was dead.
			*last = Instr{Op: OpLoadConv, A: last.A, B: last.B, C: last.C, D: ci}
			return
		}
	}
	c.emit(Instr{Op: OpConvert, A: r, B: r, C: ci})
}

// expr compiles e; the result register is always the first register
// allocated during its compilation (callers rely on this to pack call
// arguments contiguously).
func (c *fnCompiler) expr(e cil.Expr) int32 {
	switch x := e.(type) {
	case *cil.Const:
		r := c.alloc()
		c.emit(Instr{Op: OpConstInt, A: r, B: c.constI(x.I)})
		return r
	case *cil.FConst:
		r := c.alloc()
		c.emit(Instr{Op: OpConstFloat, A: r, B: c.floatI(x.F)})
		return r
	case *cil.SizeOf:
		r := c.alloc()
		c.emit(Instr{Op: OpConstInt, A: r, B: c.constI(int64(c.lay.Sizeof(x.Of)))})
		return r
	case *cil.StrConst:
		r := c.alloc()
		c.emit(Instr{Op: OpConstStr, A: r, B: c.strI(x.S)})
		return r
	case *cil.FnConst:
		r := c.alloc()
		c.emit(Instr{Op: OpFnAddr, A: r, B: c.nameI(x.Name)})
		return r
	case *cil.Lval:
		// A load never observes the home bounds (they matter only to
		// OpAddrOf), so fully-static sources fuse address and load.
		if x.LV.Var != nil {
			if pOff, _, _, _, ok := c.staticOffsets(x.LV); ok {
				r := c.alloc()
				ty := c.typeI(x.LV.Ty)
				if x.LV.Var.Global {
					c.emit(Instr{Op: OpLoadGlobal, A: r, B: c.globalI(x.LV.Var), C: ty, D: pOff})
					return r
				}
				off := c.localOff(x.LV.Var) + pOff
				if c.fusable() {
					if last := &c.fc.Code[len(c.fc.Code)-1]; last.Op == OpStep {
						// A statement's first action is very often reading a
						// local — the single hottest dynamic pair.
						*last = Instr{Op: OpStepLoadLocal, A: r, B: off, C: ty, D: last.A}
						return r
					}
				}
				c.emit(Instr{Op: OpLoadLocal, A: r, B: off, C: ty})
				return r
			}
		} else if len(x.LV.Offset) == 0 {
			// Plain *p: the bounds OpAddrMem would compute are dead for a
			// load, so read straight through the pointer value.
			r := c.expr(x.LV.Mem)
			c.emit(Instr{Op: OpLoad, A: r, B: r, C: c.typeI(x.LV.Ty)})
			return r
		}
		r := c.lval(x.LV)
		c.emit(Instr{Op: OpLoad, A: r, B: r, C: c.typeI(x.LV.Ty)})
		return r
	case *cil.AddrOf:
		r := c.lval(x.LV)
		kase := int32(AddrPlain)
		tyIdx := int32(-1)
		switch c.lay.KindOf(x.Ty) {
		case qual.Wild:
			kase = AddrWild
		case qual.Rtti:
			if x.Ty.Elem != nil {
				kase = AddrRtti
				tyIdx = c.typeI(x.Ty.Elem)
			}
		}
		if kase == AddrPlain {
			// Every lval path leaves a clean {VPtr, addr, home} value in r,
			// so the plain case's only effect — forcing the kind to VPtr —
			// is a no-op and the opcode is elided.
			return r
		}
		c.emit(Instr{Op: OpAddrOf, A: r, B: r, C: kase, D: tyIdx})
		return r
	case *cil.BinOp:
		bi := BinInfo{Op: x.Op}
		switch x.Op {
		case cil.OpAddPI, cil.OpSubPI:
			bi.Esz = int64(c.lay.Sizeof(x.A.Type().Elem))
		case cil.OpSubPP:
			bi.Esz = int64(c.lay.Sizeof(x.A.Type().Elem))
			if bi.Esz == 0 {
				bi.Esz = 1
			}
		default:
			t := x.Ty
			bi.IsInt = t.Kind == ctypes.Int
			bi.Size = t.Size
			bi.TySigned = t.Signed
			bi.OpSigned = t.Kind != ctypes.Int || t.Signed
			bi.F32 = t.Kind == ctypes.Float && t.Size == 4
		}
		a := c.expr(x.A)
		// A constant RHS (loop bounds, increments, pointer offsets) folds
		// into the operation: constant evaluation is pure in the tree.
		if cc, isConst := x.B.(*cil.Const); isConst {
			if c.fusable() {
				switch last := &c.fc.Code[len(c.fc.Code)-1]; {
				case last.Op == OpLoadLocal && last.A == a:
					// local <op> constant (i < n, i + 1, ...): the load's
					// register write was the operation's only consumer.
					fused := bi
					fused.CI = cc.I
					*last = Instr{Op: OpLoadLocalBinConst, A: a, B: last.B, C: last.C, D: c.binI(fused)}
					return a
				case last.Op == OpStepLoadLocal && last.A == a:
					// Statement-initial local <op> constant: fold the step in
					// too (the load's type index rides in the BinInfo).
					fused := bi
					fused.CI = cc.I
					fused.LTy = last.C
					*last = Instr{Op: OpStepLoadLocalBinConst, A: a, B: last.B, C: c.binI(fused), D: last.D}
					return a
				}
			}
			c.emit(Instr{Op: OpBinConst, A: a, B: a, C: c.constI(cc.I), D: c.binI(bi)})
			return a
		}
		b := c.expr(x.B)
		if c.fusable() {
			if n := len(c.fc.Code) - 1; c.fc.Code[n].Op == OpLoadLocal && c.fc.Code[n].A == b {
				last := c.fc.Code[n]
				if c.barrier < n && c.fc.Code[n-1].Op == OpLoadLocal && c.fc.Code[n-1].A == a {
					// local <op> local: both operand loads fold in. Dropping
					// the RHS load instruction is safe — no label points at
					// or past it (barrier check), so no jump index shifts.
					prev := c.fc.Code[n-1]
					fused := bi
					fused.LTy = prev.C
					fused.RTy = last.C
					c.fc.Code[n-1] = Instr{Op: OpLoadLocal2Bin, A: a, B: prev.B, C: last.B, D: c.binI(fused)}
					c.fc.Code = c.fc.Code[:n]
					c.release(b)
					return a
				}
				// lhs <op> local: fold the RHS load into the operation.
				c.fc.Code[n] = Instr{Op: OpLoadLocalBin, A: a, B: last.B, C: last.C, D: c.binI(bi)}
				c.release(b)
				return a
			}
		}
		c.emit(Instr{Op: OpBin, A: a, B: a, C: b, D: c.binI(bi)})
		c.release(b)
		return a
	case *cil.UnOp:
		r := c.expr(x.X)
		u := UnInfo{Op: x.Op}
		if x.Op == cil.OpNeg || x.Op == cil.OpBitNot {
			u.Size = x.Ty.Size
			u.Signed = x.Ty.Signed
		}
		c.emit(Instr{Op: OpUn, A: r, B: r, C: c.unI(u)})
		return r
	case *cil.Cast:
		r := c.expr(x.X)
		c.conv(r, x.X.Type(), x.To, x.Trusted)
		return r
	}
	c.fail("unknown expression %T", e)
	return -1
}

// staticOffsets folds lv's offset chain when every array index is a
// compile-time constant. It returns the total pointer displacement and
// the final home area, both relative to the variable's base address,
// applying evalLval's rules step by step: a Field narrows the home to
// the field's extent, an Index moves the pointer but keeps the home.
// Constant-index evaluation is pure in the tree backend (no counters),
// so folding it away is unobservable.
func (c *fnCompiler) staticOffsets(lv *cil.Lvalue) (pOff, homeOff, homeSize int32, hasField, ok bool) {
	cur := lv.Var.Type
	var p, hOff int64
	hSize := int64(scalarSize(c.lay, cur))
	for _, o := range lv.Offset {
		if o.Field != nil {
			p += int64(c.lay.FieldOff(o.Field))
			hOff = p
			hSize = int64(scalarSize(c.lay, o.Field.Type))
			cur = o.Field.Type
			hasField = true
			continue
		}
		cc, isConst := o.Index.(*cil.Const)
		if !isConst || cur.Kind != ctypes.Array {
			return 0, 0, 0, false, false
		}
		p += cc.I * int64(c.lay.Sizeof(cur.Elem))
		cur = cur.Elem
	}
	if p < math.MinInt32 || p > math.MaxInt32 || hOff < math.MinInt32 || hOff > math.MaxInt32 {
		return 0, 0, 0, false, false
	}
	return int32(p), int32(hOff), int32(hSize), hasField, true
}

// localOff is the frame-slot offset of local v (compile failure — and so
// tree fallback — when the layout has no slot for it).
func (c *fnCompiler) localOff(v *cil.Var) int32 {
	off, ok := c.offsets[v]
	if !ok {
		c.fail("variable %q has no slot", v.Name)
	}
	return int32(off)
}

// lval compiles the address computation of lv: the result register holds
// the address with the home-area bounds in its B/E fields (what evalLval
// returns as (addr, homeB, homeE)). Fully-static chains on locals fold
// to a single OpAddrLocal; on globals to OpAddrGlobal plus at most two
// postfix steps (the global's address is only known at run time).
func (c *fnCompiler) lval(lv *cil.Lvalue) int32 {
	var r int32
	var cur *ctypes.Type
	switch {
	case lv.Var != nil:
		v := lv.Var
		cur = v.Type
		if pOff, homeOff, homeSize, hasField, ok := c.staticOffsets(lv); ok {
			r = c.alloc()
			if !v.Global {
				off := c.localOff(v)
				c.emit(Instr{Op: OpAddrLocal, A: r, B: off + pOff, C: off + homeOff, D: homeSize})
				return r
			}
			c.emit(Instr{Op: OpAddrGlobal, A: r, B: c.globalI(v), C: scalarSize(c.lay, cur)})
			if hasField {
				// One narrowing step to the folded field extent, then a
				// bare displacement for any trailing constant indices.
				c.emit(Instr{Op: OpFieldOff, A: r, B: r, C: homeOff, D: homeSize})
				if pOff != homeOff {
					c.emit(Instr{Op: OpIndexConst, A: r, B: r, C: pOff - homeOff})
				}
			} else if pOff != 0 {
				c.emit(Instr{Op: OpIndexConst, A: r, B: r, C: pOff})
			}
			return r
		}
		r = c.alloc()
		if v.Global {
			c.emit(Instr{Op: OpAddrGlobal, A: r, B: c.globalI(v), C: scalarSize(c.lay, cur)})
		} else {
			c.emit(Instr{Op: OpAddrLocal, A: r, B: c.localOff(v), C: c.localOff(v), D: scalarSize(c.lay, cur)})
		}
	default:
		r = c.expr(lv.Mem)
		cur = lv.Mem.Type().Elem
		if len(lv.Offset) > 0 && lv.Offset[0].Field != nil {
			// p->f: OpFieldOff rebuilds the home from the field's extent
			// alone, so the bounds OpAddrMem would derive are dead.
			break
		}
		sz := scalarSize(c.lay, cur)
		if c.fusable() {
			if last := &c.fc.Code[len(c.fc.Code)-1]; last.Op == OpBin && last.A == r {
				// p[i] via pointer arithmetic: *(p + i) in one dispatch.
				fused := c.fc.Bins[last.D]
				fused.MemSize = sz
				*last = Instr{Op: OpBinAddrMem, A: r, B: last.B, C: last.C, D: c.binI(fused)}
				break
			}
		}
		c.emit(Instr{Op: OpAddrMem, A: r, B: r, C: sz})
	}
	for i := 0; i < len(lv.Offset); i++ {
		o := lv.Offset[i]
		if o.Field != nil {
			// Fold a run of consecutive field steps: the intermediate home
			// narrowings are dead — only the last field's extent survives.
			off := int64(c.lay.FieldOff(o.Field))
			cur = o.Field.Type
			for i+1 < len(lv.Offset) && lv.Offset[i+1].Field != nil {
				i++
				off += int64(c.lay.FieldOff(lv.Offset[i].Field))
				cur = lv.Offset[i].Field.Type
			}
			c.emit(Instr{Op: OpFieldOff, A: r, B: r, C: int32(off), D: scalarSize(c.lay, cur)})
			continue
		}
		if cur.Kind != ctypes.Array {
			c.fail("index step on non-array type %s", cur)
		}
		if cc, isConst := o.Index.(*cil.Const); isConst {
			if disp := cc.I * int64(c.lay.Sizeof(cur.Elem)); disp >= math.MinInt32 && disp <= math.MaxInt32 {
				if disp != 0 {
					c.emit(Instr{Op: OpIndexConst, A: r, B: r, C: int32(disp)})
				}
				cur = cur.Elem
				continue
			}
		}
		idx := c.expr(o.Index)
		c.emit(Instr{Op: OpIndexOff, A: r, B: r, C: idx, D: int32(c.lay.Sizeof(cur.Elem))})
		c.release(idx)
		cur = cur.Elem
	}
	return r
}

// store assigns register r to lv, fusing fully-static local and global
// destinations into single opcodes (the address value is never
// materialized; onStore fires inside Machine.store either way).
func (c *fnCompiler) store(lv *cil.Lvalue, r int32) {
	if lv.Var != nil {
		if pOff, _, _, _, ok := c.staticOffsets(lv); ok {
			ty := c.typeI(lv.Ty)
			if lv.Var.Global {
				c.emit(Instr{Op: OpStoreGlobal, A: c.globalI(lv.Var), B: r, C: ty, D: pOff})
				return
			}
			off := c.localOff(lv.Var) + pOff
			if c.fusable() {
				if last := &c.fc.Code[len(c.fc.Code)-1]; last.Op == OpConvert && last.A == r && last.B == r {
					// The assignment conversion's register write is dead —
					// only the stored (converted) value survives.
					*last = Instr{Op: OpConvStoreLocal, A: off, B: r, C: last.C, D: ty}
					return
				}
			}
			c.emit(Instr{Op: OpStoreLocal, A: off, B: r, C: ty})
			return
		}
	}
	if lv.Var == nil && len(lv.Offset) == 0 {
		// Plain *p = v: OpAddrMem's bounds are dead for a store.
		addr := c.expr(lv.Mem)
		c.emit(Instr{Op: OpStore, A: addr, B: r, C: c.typeI(lv.Ty)})
		return
	}
	addr := c.lval(lv)
	c.emit(Instr{Op: OpStore, A: addr, B: r, C: c.typeI(lv.Ty)})
}
