// Package vm defines the flat register-style bytecode the cured
// interpreter executes by default, and the compiler that produces it from
// an instrumented CIL program.
//
// The tree-walking evaluator in internal/interp re-dispatches on Go node
// types for every statement and expression, and resolves every local
// variable through a per-function offset map. The bytecode backend moves
// all of that work to compile time: one pass per cil.Func lowers the
// structured statement tree into a dense []Instr, resolves every cil.Var
// to a fixed frame-slot offset (via the same FrameLayout the tree backend
// uses, so frame addresses are bit-identical), folds sizeof, interns
// constants/strings/types/conversion pairs into per-function pools, and
// lowers every run-time check to dedicated opcodes that carry the
// *cil.Check — and therefore its post-optimizer site ID — so the hot path
// never touches a map or renders a position string.
//
// The package owns the code format and the compiler only; the dispatch
// loop lives in internal/interp (it needs the full machine state: memory,
// counters, flight recorder, trap plumbing). Semantics are defined by the
// tree backend: every opcode mirrors one evaluation step of the tree
// walker exactly, including evaluation order, step/back-edge accounting,
// lazy string interning, and trap messages. The differential fuzzer
// enforces the equivalence.
package vm

import (
	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/qual"
)

// Layout is the slice of the layout oracle the compiler needs. Both
// instrument.(*Layout) (cured) and instrument.RawLayout (raw) satisfy it.
type Layout interface {
	Sizeof(*ctypes.Type) int
	Alignof(*ctypes.Type) int
	FieldOff(*ctypes.Field) int
	KindOf(*ctypes.Type) qual.Kind
	IsSplit(*ctypes.Type) bool
}

// TyDesc caches everything Machine.load/store interrogate about an
// occurrence type — scalar class, width, signedness, split representation,
// pointer kind — so the VM's memory opcodes skip the per-access kind
// switch, split lookup, and qualifier-graph query the tree walker performs
// on every load and store.
type TyDesc struct {
	Kind   ctypes.Kind // scalar class (Int/Float/Ptr)
	Size   int32       // t.Size: int/float operand width
	Signed bool
	Split  bool      // compatible (split) pointer representation
	PKind  qual.Kind // pointer kind driving the fat representation
}

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Operand meanings are given per opcode; A is usually the
// destination register, B/C sources, D a pool index.
const (
	OpNop Op = iota

	// Control flow and accounting.
	OpStep      // one statement step; A = Poss index to set curPos (-1: keep)
	OpBackEdge  // loop back-edge: counts against the step limit, no cost
	OpJump      // pc = A
	OpJumpFalse // if !truthy(reg B): pc = A
	OpJumpEq    // if reg B as int == Consts[C]: pc = A (switch dispatch)
	// Fused binop-and-branch: an If condition whose value is produced by
	// the immediately preceding OpBin/OpBinConst and then dies folds into
	// one opcode (the register write was unobservable).
	OpJumpBinFalse      // if !truthy(binop(reg B, reg C, Bins[D])): pc = A
	OpJumpBinConstFalse // if !truthy(binop(reg B, Consts[C], Bins[D])): pc = A
	OpReturn            // return reg A (-1: return zero value)

	// Constants.
	OpConstInt   // reg A = Consts[B]
	OpConstFloat // reg A = Floats[B]
	OpConstStr   // reg A = intern(Strs[B]) (lazy, like the tree backend)
	OpFnAddr     // reg A = &function Names[B]

	// Addresses. Address registers carry the home-area bounds in B/E so
	// OpAddrOf can hand SEQ pointers their extent, exactly as evalLval.
	// The compiler folds chains of fields and constant array indices at
	// compile time, so a static lvalue like s.a[3].f is one instruction.
	OpAddrLocal  // reg A = frame base + B; home = [base+C, base+C+D)
	OpAddrGlobal // reg A = globals[B]; home = [addr, addr+C)
	OpAddrMem    // reg A = deref reg B; home = ptr bounds or [addr, addr+C)
	OpFieldOff   // reg A = reg B + C; home narrows to [addr, addr+D)
	OpIndexOff   // reg A = reg B + (reg C)*D; home kept (whole array)
	OpIndexConst // reg A = reg B + C bytes; home kept (folded const index)
	OpAddrOf     // reg A = address-of reg B; C = AddrPlain/Wild/Rtti, D = Types idx

	// Memory. TySizes[C] parallels Types[C] (the shadow-policy hook size).
	OpLoad        // reg A = load(reg B, Types[C])
	OpStore       // store(reg A, Types[C], reg B)
	OpLoadLocal   // reg A = load(frame base + B, Types[C]) (fused addr+load)
	OpStoreLocal  // store(frame base + A, Types[C], reg B)
	OpLoadGlobal  // reg A = load(globals[B] + D, Types[C])
	OpStoreGlobal // store(globals[A] + D, Types[C], reg B)
	OpAggCopy     // memcpy(reg A, reg B, C bytes)

	// Values.
	OpConvert  // reg A = convert(reg B, Convs[C])
	OpBin      // reg A = binop(reg B, reg C, Bins[D])
	OpBinConst // reg A = binop(reg B, int Consts[C], Bins[D]) (folded RHS)
	OpUn       // reg A = unop(reg B, Uns[C])

	// Calls. Arguments sit in consecutive registers (Calls[idx].ArgBase).
	OpCallFn    // reg A = call Calls[C] (direct, defined function)
	OpCallNamed // reg A = call Calls[C] (builtin wrapper or link trap)
	OpCallPtr   // reg A = call through pointer reg B with Calls[C]

	// Checks (two-phase so traps during pointer evaluation attribute to
	// the check site, mirroring the tree's execCheck ordering).
	OpCheckBegin  // count/cost/record Checks[C] and set it in flight
	OpCheck       // verdict of Checks[C] on reg B; clears the in-flight check
	OpStackTest   // CheckStackEscape: if reg B is not a live stack ptr, pc = A
	OpStackVerify // CheckStackEscape: trap if dst (reg C) is off-stack; B = ptr

	// Superinstructions: the compiler peepholes the hottest dynamic opcode
	// pairs (measured over the corpus) into single dispatches. Each one is
	// exactly its two constituents executed in sequence — a fusion is only
	// legal when no jump target falls between the pair, which the compiler
	// guarantees by tracking the highest label it has handed out.
	OpJumpTrue          // if truthy(reg B): pc = A (an If condition "!x")
	OpJumpBack          // loop tail: back-edge charge, then pc = A (past the head's OpBackEdge)
	OpLoadConv          // reg A = convert(load(reg B, Types[C]), Convs[D])
	OpStepLoadLocal     // step (pos D), then reg A = load(base+B, Types[C])
	OpStoreLocalStep    // store(base+A, Types[C], reg B), then step (pos D)
	OpConvStoreLocal    // store(base+A, Types[D], convert(reg B, Convs[C]))
	OpJumpFalseStep     // if !truthy(reg B): pc = A; else step (pos C)
	OpLoadLocalBin      // reg A = binop(reg A, load(base+B, Types[C]), Bins[D])
	OpLoadLocalBinConst // reg A = binop(load(base+B, Types[C]), Bins[D].CI, Bins[D])
	OpBinAddrMem        // reg A = deref binop(reg B, reg C, Bins[D]); size Bins[D].MemSize
	OpBinCheck          // verdict of Checks[A] on binop(reg B, reg C, Bins[D])
	OpCheckStep         // verdict of Checks[C] on reg B, then step (pos D)
	OpStepCheckBegin    // step (pos D), then count/record Checks[C] in flight
	// Triple fusions (local op local, and statement-initial local op const):
	// the folded loads' type indices ride in the BinInfo (LTy/RTy).
	OpLoadLocal2Bin         // reg A = binop(load(base+B), load(base+C), Bins[D])
	OpStepLoadLocalBinConst // step (pos D), reg A = binop(load(base+B), Bins[C].CI, Bins[C])
)

var opNames = [...]string{
	"nop", "step", "backedge", "jump", "jumpfalse", "jumpeq",
	"jumpbinfalse", "jumpbinconstfalse", "return",
	"const", "fconst", "str", "fnaddr",
	"addrlocal", "addrglobal", "addrmem", "fieldoff", "indexoff", "indexconst", "addrof",
	"load", "store", "loadlocal", "storelocal", "loadglobal", "storeglobal", "aggcopy",
	"convert", "bin", "binconst", "un",
	"call", "callnamed", "callptr",
	"checkbegin", "check", "stacktest", "stackverify",
	"jumptrue", "jumpback", "loadconv",
	"steploadlocal", "storelocalstep", "convstorelocal",
	"jumpfalsestep", "loadlocalbin", "loadlocalbinconst", "binaddrmem",
	"bincheck", "checkstep", "stepcheckbegin",
	"loadlocal2bin", "steploadlocalbinconst",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// AddrOf cases (operand C of OpAddrOf).
const (
	AddrPlain = iota // SAFE/SEQ: keep the home bounds
	AddrWild         // WILD: make the block wild, base = block address
	AddrRtti         // RTTI: attach the static type (Types[D])
)

// Instr is one bytecode instruction: an opcode and up to four operands.
type Instr struct {
	Op         Op
	A, B, C, D int32
}

// ConvInfo is one interned conversion (Cast or implicit assignment
// conversion): the occurrence types and whether the cast was trusted.
type ConvInfo struct {
	From, To *ctypes.Type
	Trusted  bool
}

// BinInfo is one interned binary operation with everything evalBinOp
// derives from the node precomputed.
type BinInfo struct {
	Op  cil.Op
	Esz int64 // element size for pointer arithmetic (AddPI/SubPI/SubPP)
	// Result-type facts: IsInt/Size/TySigned drive normInt; OpSigned is
	// the signedness used by div/rem/shift/compare ("not an int type or a
	// signed one"); F32 narrows float results.
	IsInt    bool
	Size     int
	TySigned bool
	OpSigned bool
	F32      bool
	// CI is the folded constant RHS of OpLoadLocalBinConst and
	// OpStepLoadLocalBinConst; MemSize the dereference size of
	// OpBinAddrMem; LTy/RTy the Types indices of the operand loads folded
	// into OpLoadLocal2Bin and OpStepLoadLocalBinConst. Zero (and unused)
	// elsewhere — variants are interned as distinct BinInfos.
	CI       int64
	MemSize  int32
	LTy, RTy int32
}

// UnInfo is one interned unary operation.
type UnInfo struct {
	Op     cil.Op
	Size   int
	Signed bool
}

// CallInfo is one interned call site. Arguments are evaluated into the
// NArgs consecutive registers starting at ArgBase before the call opcode
// executes (already converted to parameter types for direct calls).
type CallInfo struct {
	// Fn/FC name a defined function (OpCallFn); FC is linked after all
	// functions compile and is nil when the callee fell back to the tree
	// backend.
	Fn *cil.Func
	FC *FuncCode
	// Name is the callee for OpCallNamed (builtin wrapper or undefined).
	Name    string
	ArgBase int32
	NArgs   int32
	// ArgTypes are the argument occurrence types (OpCallPtr converts to
	// the target's parameter types at run time, like the tree's callPtr).
	ArgTypes []*ctypes.Type
}

// FuncCode is the compiled form of one function.
type FuncCode struct {
	Fn      *cil.Func
	Code    []Instr
	NumRegs int

	// FrameSize and ParamOffs come from FrameLayout: identical to the
	// frame the tree backend builds, so stack addresses match exactly.
	FrameSize uint32
	ParamOffs []uint32

	// Pools. TySizes[i] caches Sizeof(Types[i]) so the shadow-policy hook
	// needs no layout call on the load path; TyDescs[i] resolves the
	// type's memory representation once, at compile time.
	Consts  []int64
	Floats  []float64
	Strs    []string
	Names   []string
	Types   []*ctypes.Type
	TySizes []int32
	TyDescs []TyDesc
	Poss    []diag.Pos
	Convs   []ConvInfo
	Bins    []BinInfo
	Uns     []UnInfo
	Calls   []CallInfo
	Checks  []*cil.Check
}

// Module is a compiled program: one FuncCode per compilable function plus
// the global-variable index table the executor binds to addresses once at
// machine construction.
type Module struct {
	Prog   *cil.Program
	Funcs  []*FuncCode
	ByFunc map[*cil.Func]*FuncCode
	// Globals lists every global referenced by compiled code; OpAddrGlobal
	// operand B indexes it (the machine resolves each to an address once).
	Globals []*cil.Var
	// Skipped names functions the compiler could not lower (they run on
	// the tree backend via the per-function fallback).
	Skipped []string
}
