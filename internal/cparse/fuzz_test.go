package cparse_test

import (
	"os"
	"strings"
	"testing"

	"gocured/internal/cparse"
	"gocured/internal/diag"
)

// exampleSeeds returns the C sources shipped under examples/ — real
// accepted inputs make the best fuzzing seeds.
func exampleSeeds(f *testing.F) []string {
	f.Helper()
	var out []string
	// wild.c is a plain C file.
	if data, err := os.ReadFile("../../examples/explain/wild.c"); err == nil {
		out = append(out, string(data))
	}
	// quickstart and oop embed their C source as a backquoted Go literal.
	for _, path := range []string{
		"../../examples/quickstart/main.go",
		"../../examples/oop/main.go",
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		s := string(data)
		if i := strings.Index(s, "const src = `"); i >= 0 {
			s = s[i+len("const src = `"):]
			if j := strings.Index(s, "`"); j >= 0 {
				out = append(out, s[:j])
			}
		}
	}
	if len(out) == 0 {
		f.Fatal("no example seeds found")
	}
	return out
}

// FuzzParse asserts the frontend never panics: any input, however
// malformed, must come back as a parse tree or diagnostics.
func FuzzParse(f *testing.F) {
	for _, seed := range exampleSeeds(f) {
		f.Add(seed)
	}
	// Known-tricky shapes: unterminated tokens, stray punctuation, deep
	// nesting, truncated declarations.
	f.Add(`int main(void) { return "`)
	f.Add(`struct S { struct S s; };`)
	f.Add(`int f(int a, { }`)
	f.Add(`#pragma ccuredWrapperOf(`)
	f.Add(`int x = ((((((((((1))))))))));`)
	f.Add("int a[\x00];")
	f.Fuzz(func(t *testing.T, src string) {
		var diags diag.List
		cparse.Parse("fuzz.c", src, &diags)
		// No assertion needed beyond termination without panic:
		// malformed input surfaces in diags, which is the contract.
	})
}
