package instrument

import (
	"fmt"
	"strings"

	"gocured/internal/cil"
	"gocured/internal/diag"
)

// Check-elimination over a real control-flow graph. The paper notes that,
// unlike binary instrumentors, CCured can use static information to remove
// checks; this pass is where that advantage is cashed in. Three
// transformations run per function, in order:
//
//  1. Loop pass (structured tree): checks in the guaranteed prefix of a
//     loop body — the statements that execute on every iteration before
//     anything can write memory or leave the loop, crossing only
//     `if (c) break;` guards — are moved to a guarded preheader when their
//     operands are loop-invariant, and *widened* to a pair of endpoint
//     checks when they are affine in a recognized induction variable
//     (`for (i = i0; i < N; i++) ... a[i]`: check a+i0 and a+N-1 once,
//     instead of a+i every iteration).
//
//  2. Available-check elimination (CFG dataflow): a check is deleted when
//     an identical check is available on *every* path from the entry and
//     nothing that could change its outcome intervenes. Availability is an
//     intersection dataflow over the basic-block graph, so facts survive
//     branches and joins: a check established before an `if` (or in both
//     arms) still covers the code after the join, and a check dominated by
//     an identical unkilled check is always removed (availability on every
//     path subsumes availability on the dominating path). This replaces
//     the old straight-line pass, whose "entering or leaving nested
//     control flow clears all facts" conservatism gave loops — exactly
//     where SEQ bounds checks dominate cost — no relief.
//
//  3. SEQ coalescing (per block): adjacent SEQ bounds checks on the same
//     base pointer with constant element offsets collapse into the first
//     check, widened to cover the whole constant range (`p[0] + p[1] +
//     p[2]` pays one check, not three).
//
// Safety argument (the differential fuzzer in internal/interp enforces it
// empirically): a hoisted or widened check may trap *earlier* than the
// checks it replaces, but only on executions that would have trapped
// anyway — the guaranteed-prefix rule means the moved check runs in the
// preheader exactly when the first iteration would have run it, and the
// endpoint pair of a widened check fails exactly when some iteration's
// check would have failed (the offsets are monotone in the induction
// variable, so the endpoints bound every intermediate access). Eliminated
// checks are re-proved by an identical check on every incoming path.
// Coalescing can move a bounds trap from a later access in a group to the
// group head, but the group spans no observable effect (checks are emitted
// adjacently, before the statement they guard), so only the trap's column
// and pointer value can differ — never whether the program traps, the trap
// kind, or anything it printed.

// Kill rules (shared by every pass):
//
//   - a Set to a variable kills facts that mention that variable;
//   - a store through memory kills facts that read memory or mention
//     address-taken or global variables (potential aliases);
//   - a call kills the same set (a callee cannot touch the caller's
//     non-address-taken locals).

// OptStats summarizes one optimization run over a program.
type OptStats struct {
	// Eliminated counts checks deleted by available-check elimination;
	// Coalesced counts SEQ checks merged into a widened neighbor. Both are
	// static deletions.
	Eliminated int
	Coalesced  int
	// Hoisted counts loop-invariant checks moved to a preheader; Widened
	// counts induction checks replaced by an endpoint pair. These keep a
	// static site but stop executing once per iteration.
	Hoisted int
	Widened int
	// EliminatedByKind breaks the static deletions down by check kind.
	EliminatedByKind map[cil.CheckKind]int
	// PerFunc maps function name to its per-function statistics.
	PerFunc map[string]*FuncOpt
	// Sites attributes every statically deleted check to its source
	// position, so run-time reporting (TopSites, -explain) can show what
	// the optimizer removed instead of silently under-counting.
	Sites []SiteElim
}

// Removed returns the number of check instructions deleted outright.
func (s *OptStats) Removed() int { return s.Eliminated + s.Coalesced }

// FuncOpt is the per-function optimization summary.
type FuncOpt struct {
	Before, After                           int // static checks in the body
	Eliminated, Hoisted, Widened, Coalesced int
	Blocks, Loops                           int // CFG shape
}

// SiteElim records statically deleted checks at one source site.
type SiteElim struct {
	Pos  diag.Pos
	Kind cil.CheckKind
	N    int
}

// Optimize runs the check optimizer over c.Prog and records the statistics
// on c. It must run after Cure and is skipped entirely at -O0.
func Optimize(c *Cured) *OptStats {
	st := &OptStats{
		EliminatedByKind: make(map[cil.CheckKind]int),
		PerFunc:          make(map[string]*FuncOpt),
	}
	siteIdx := make(map[string]int)
	record := func(chk *cil.Check) {
		st.EliminatedByKind[chk.Kind]++
		key := chk.Pos.String() + "|" + chk.Kind.String()
		if i, ok := siteIdx[key]; ok {
			st.Sites[i].N++
		} else {
			siteIdx[key] = len(st.Sites)
			st.Sites = append(st.Sites, SiteElim{Pos: chk.Pos, Kind: chk.Kind, N: 1})
		}
	}
	for _, f := range c.Prog.Funcs {
		fo := &FuncOpt{Before: countChecks(f.Body.Stmts)}
		hoistLoops(f.Body, fo)
		g := cil.BuildCFG(f)
		dom := g.Dominators()
		fo.Blocks = len(g.Blocks)
		fo.Loops = len(g.NaturalLoops(dom))
		eliminateAvailable(g, f, fo, record)
		coalesceSeq(f.Body, c.Lay, fo, record)
		fo.After = countChecks(f.Body.Stmts)
		st.PerFunc[f.Name] = fo
		st.Eliminated += fo.Eliminated
		st.Hoisted += fo.Hoisted
		st.Widened += fo.Widened
		st.Coalesced += fo.Coalesced
	}
	c.Opt = st
	c.ChecksEliminated = st.Removed()
	return st
}

func countChecks(stmts []cil.Stmt) int {
	n := 0
	cil.WalkInstrs(stmts, func(i cil.Instr) {
		if _, ok := i.(*cil.Check); ok {
			n++
		}
	})
	return n
}

// ---- fact keys and dependencies ----

// factDeps describes what a check's operands depend on.
type factDeps struct {
	vars     map[*cil.Var]bool
	memRead  bool
	addrVars bool // references an address-taken or global variable
}

func depsOf(c *cil.Check) factDeps {
	d := factDeps{vars: make(map[*cil.Var]bool)}
	scan := func(e cil.Expr) {
		cil.WalkExpr(e, func(x cil.Expr) {
			switch v := x.(type) {
			case *cil.Lval:
				if v.LV.Var != nil {
					d.vars[v.LV.Var] = true
					if v.LV.Var.AddrTaken || v.LV.Var.Global {
						d.addrVars = true
					}
					if len(v.LV.Offset) > 0 {
						// reading through offsets touches memory
						d.memRead = true
					}
				} else {
					d.memRead = true
				}
			case *cil.AddrOf:
				if v.LV.Mem != nil {
					d.memRead = true
				}
			}
		})
	}
	scan(c.Ptr)
	if c.DstLV != nil {
		cil.WalkLvalue(c.DstLV, func(e cil.Expr) { scan(e) })
		if c.DstLV.Var != nil {
			d.vars[c.DstLV.Var] = true
		} else {
			d.memRead = true
		}
	}
	return d
}

// keyExpr renders e into b as a value-identity key. Unlike ExprString it
// qualifies variables with their IDs (shadowed names must not collide) and
// type occurrences with their node address (two casts that print alike can
// still convert between different pointer kinds).
func keyExpr(b *strings.Builder, e cil.Expr) {
	switch x := e.(type) {
	case nil:
	case *cil.Const:
		fmt.Fprintf(b, "c%d", x.I)
	case *cil.FConst:
		fmt.Fprintf(b, "f%g", x.F)
	case *cil.StrConst:
		fmt.Fprintf(b, "s%q", x.S)
	case *cil.FnConst:
		fmt.Fprintf(b, "fn:%s", x.Name)
	case *cil.SizeOf:
		fmt.Fprintf(b, "sz%p", x.Of)
	case *cil.Lval:
		keyLval(b, x.LV)
	case *cil.AddrOf:
		b.WriteByte('&')
		keyLval(b, x.LV)
	case *cil.BinOp:
		fmt.Fprintf(b, "(%d ", int(x.Op))
		keyExpr(b, x.A)
		b.WriteByte(' ')
		keyExpr(b, x.B)
		b.WriteByte(')')
	case *cil.UnOp:
		fmt.Fprintf(b, "(u%d ", int(x.Op))
		keyExpr(b, x.X)
		b.WriteByte(')')
	case *cil.Cast:
		fmt.Fprintf(b, "(cast%p ", x.To)
		keyExpr(b, x.X)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "?%T", e)
	}
}

func keyLval(b *strings.Builder, lv *cil.Lvalue) {
	if lv.Var != nil {
		if lv.Var.Global {
			fmt.Fprintf(b, "g%d", lv.Var.ID)
		} else {
			fmt.Fprintf(b, "l%d", lv.Var.ID)
		}
	} else {
		b.WriteString("(*")
		keyExpr(b, lv.Mem)
		b.WriteByte(')')
	}
	for _, o := range lv.Offset {
		if o.Field != nil {
			fmt.Fprintf(b, ".%s", o.Field.Name)
		} else {
			b.WriteByte('[')
			keyExpr(b, o.Index)
			b.WriteByte(']')
		}
	}
}

func factKey(c *cil.Check) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", int(c.Kind))
	keyExpr(&b, c.Ptr)
	fmt.Fprintf(&b, "|%d", c.Size)
	if c.RttiTarget != nil {
		fmt.Fprintf(&b, "|%p", c.RttiTarget)
	}
	if c.DstLV != nil {
		b.WriteString("|dst:")
		keyLval(&b, c.DstLV)
	}
	return b.String()
}

// ---- loop pass: invariant hoisting and induction widening ----

// loopKills summarizes what one loop (body + post, including nested
// statements) can modify.
type loopKills struct {
	vars map[*cil.Var]bool
	mem  bool // stores through memory or into variable interiors
	call bool
}

// exitCounts tallies the ways control can leave one loop.
type exitCounts struct {
	breaks, continues, returns int
}

func summarizeLoop(l *cil.Loop) (loopKills, exitCounts) {
	k := loopKills{vars: make(map[*cil.Var]bool)}
	var ex exitCounts
	killLV := func(lv *cil.Lvalue) {
		if lv == nil {
			return
		}
		if lv.Var != nil && len(lv.Offset) == 0 {
			k.vars[lv.Var] = true
		} else {
			k.mem = true
			if lv.Var != nil {
				k.vars[lv.Var] = true
			}
		}
	}
	stmts := l.Body.Stmts
	if l.Post != nil {
		stmts = append(append([]cil.Stmt{}, stmts...), l.Post.Stmts...)
	}
	cil.WalkInstrs(stmts, func(i cil.Instr) {
		switch in := i.(type) {
		case *cil.Set:
			killLV(in.LV)
		case *cil.Call:
			k.call = true
			k.mem = true
			killLV(in.Result)
		}
	})
	countExits(stmts, 0, &ex)
	return k, ex
}

// countExits tallies Break/Continue/Return statements binding to the loop
// at depth 0. depth counts enclosing Loop nesting; Switch captures Break
// but not Continue.
func countExits(stmts []cil.Stmt, depth int, ex *exitCounts) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *cil.Break:
			if depth == 0 {
				ex.breaks++
			}
		case *cil.Continue:
			if depth == 0 {
				ex.continues++
			}
		case *cil.Return:
			ex.returns++
		case *cil.Block:
			countExits(st.Stmts, depth, ex)
		case *cil.If:
			countExits(st.Then.Stmts, depth, ex)
			if st.Else != nil {
				countExits(st.Else.Stmts, depth, ex)
			}
		case *cil.Loop:
			countExits(st.Body.Stmts, depth+1, ex)
			if st.Post != nil {
				countExits(st.Post.Stmts, depth+1, ex)
			}
		case *cil.Switch:
			for _, c := range st.Cases {
				// A Break here binds to the switch; Continue still binds to
				// our loop.
				var inner exitCounts
				countExits(c.Body, depth+1, &inner)
				if depth == 0 {
					ex.continues += inner.continues
				}
				ex.returns += inner.returns
			}
		}
	}
}

// invariantIn reports whether deps cannot be modified by a loop with the
// given kill summary.
func invariantIn(d factDeps, k loopKills, ignore *cil.Var) bool {
	for v := range d.vars {
		if v != ignore && k.vars[v] {
			return false
		}
	}
	if (d.memRead || d.addrVars) && (k.mem || k.call) {
		return false
	}
	return true
}

// hoistLoops walks the statement tree innermost-loop-first, building a
// preheader for each loop out of its hoistable prefix checks.
func hoistLoops(b *cil.Block, fo *FuncOpt) {
	var out []cil.Stmt
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *cil.Loop:
			hoistLoops(st.Body, fo)
			if st.Post != nil {
				hoistLoops(st.Post, fo)
			}
			out = append(out, hoistFromLoop(st, fo)...)
			out = append(out, st)
		case *cil.If:
			hoistLoops(st.Then, fo)
			if st.Else != nil {
				hoistLoops(st.Else, fo)
			}
			out = append(out, st)
		case *cil.Switch:
			for _, c := range st.Cases {
				inner := &cil.Block{Stmts: c.Body}
				hoistLoops(inner, fo)
				c.Body = inner.Stmts
			}
			out = append(out, st)
		case *cil.Block:
			hoistLoops(st, fo)
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	b.Stmts = out
}

// induction describes a recognized simple counting loop: v starts at its
// preheader value and increases by 1 per iteration while v < limit (or
// v <= limit). limit is a compile-time constant, so endpoint substitution
// cannot overflow the simulated address space.
type induction struct {
	v     *cil.Var
	limit int64
	maxTy *cil.Const // the guard's constant, reused for the endpoint's type
	le    bool       // guard is v <= limit
}

// maxVal returns the largest value v takes inside the loop.
func (ind *induction) maxVal() int64 {
	if ind.le {
		return ind.limit
	}
	return ind.limit - 1
}

// hoistScan walks the guaranteed prefix of a loop body: the statements that
// run on every iteration before anything can modify state or leave the
// loop, crossing only `if (c) break;` guards. It replays the prefix —
// guards as nested Ifs, hoistable checks as instructions — into a
// preheader, and marks the moved checks for removal from the body.
type hoistScan struct {
	kills   loopKills
	simple  bool // single guard-break exit, no calls: widening is allowed
	indOK   map[*cil.Var]bool
	ind     *induction
	pre     []cil.Stmt
	cur     *[]cil.Stmt
	moved   map[*cil.SInstr]bool
	nHoist  int
	nWiden  int
	nGuards int
}

// hoistFromLoop returns the preheader statements for l (nil when nothing
// hoists) and deletes the moved checks from the loop body.
func hoistFromLoop(l *cil.Loop, fo *FuncOpt) []cil.Stmt {
	kills, exits := summarizeLoop(l)
	hs := &hoistScan{
		kills:  kills,
		simple: exits.breaks == 1 && exits.continues == 0 && exits.returns == 0 && !kills.call,
		indOK:  make(map[*cil.Var]bool),
		moved:  make(map[*cil.SInstr]bool),
	}
	hs.cur = &hs.pre
	if hs.simple {
		for v := range kills.vars {
			if unitIncrement(l, v) {
				hs.indOK[v] = true
			}
		}
	}
	hs.scan(l.Body.Stmts)
	if hs.nHoist == 0 && hs.nWiden == 0 {
		return nil
	}
	removeMoved(l.Body, hs.moved)
	fo.Hoisted += hs.nHoist
	fo.Widened += hs.nWiden
	return hs.pre
}

// unitIncrement reports whether v's only modification in the loop is a
// single top-level `v = v + 1` in the body or post block.
func unitIncrement(l *cil.Loop, v *cil.Var) bool {
	if v.AddrTaken || v.Global || !v.Type.IsInteger() {
		return false
	}
	// Count every Set targeting v anywhere in the loop.
	total := 0
	stmts := l.Body.Stmts
	if l.Post != nil {
		stmts = append(append([]cil.Stmt{}, stmts...), l.Post.Stmts...)
	}
	cil.WalkInstrs(stmts, func(i cil.Instr) {
		switch in := i.(type) {
		case *cil.Set:
			if in.LV.Var == v && len(in.LV.Offset) == 0 {
				total++
			}
		case *cil.Call:
			if in.Result != nil && in.Result.Var == v && len(in.Result.Offset) == 0 {
				total++
			}
		}
	})
	if total != 1 {
		return false
	}
	// The one Set must be top-level (guaranteed once per iteration) and of
	// the form v = v + 1 — either directly or through the lowerer's
	// post-increment temp pair `t = v; v = t + 1`.
	topLevel := func(stmts []cil.Stmt) bool {
		for idx, s := range stmts {
			si, ok := s.(*cil.SInstr)
			if !ok {
				continue
			}
			set, ok := si.Ins.(*cil.Set)
			if !ok || set.LV.Var != v || len(set.LV.Offset) != 0 {
				continue
			}
			if isPlusOne(set.RHS, v) {
				return true
			}
			if idx > 0 {
				if psi, ok := stmts[idx-1].(*cil.SInstr); ok {
					if ps, ok := psi.Ins.(*cil.Set); ok &&
						ps.LV.Var != nil && ps.LV.Var.Temp && len(ps.LV.Offset) == 0 &&
						isVarRead(ps.RHS, v) && isPlusOne(set.RHS, ps.LV.Var) {
						return true
					}
				}
			}
			return false
		}
		return false
	}
	if l.Post != nil && topLevel(l.Post.Stmts) {
		return true
	}
	return topLevel(l.Body.Stmts)
}

func isPlusOne(e cil.Expr, v *cil.Var) bool {
	bo, ok := stripCasts(e).(*cil.BinOp)
	if !ok || bo.Op != cil.OpAdd {
		return false
	}
	a, b := stripCasts(bo.A), stripCasts(bo.B)
	if c, ok := b.(*cil.Const); ok && c.I == 1 {
		return isVarRead(a, v)
	}
	if c, ok := a.(*cil.Const); ok && c.I == 1 {
		return isVarRead(b, v)
	}
	return false
}

func stripCasts(e cil.Expr) cil.Expr {
	for {
		c, ok := e.(*cil.Cast)
		if !ok {
			return e
		}
		e = c.X
	}
}

func isVarRead(e cil.Expr, v *cil.Var) bool {
	lv, ok := e.(*cil.Lval)
	return ok && lv.LV.Var == v && len(lv.LV.Offset) == 0
}

// maxWidenLimit bounds the constant loop limit widening accepts: endpoint
// substitution multiplies the limit by the element stride at run time, and
// the product must stay far from wrapping the 32-bit simulated address
// space (wrapping could make the endpoint check pass while an intermediate
// access traps).
const maxWidenLimit = 1 << 20

// scan consumes the guaranteed prefix; it returns false when it reaches a
// statement it cannot cross.
func (hs *hoistScan) scan(stmts []cil.Stmt) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *cil.SInstr:
			chk, ok := st.Ins.(*cil.Check)
			if !ok {
				return false
			}
			d := depsOf(chk)
			if invariantIn(d, hs.kills, nil) {
				*hs.cur = append(*hs.cur, &cil.SInstr{Ins: chk})
				hs.moved[st] = true
				hs.nHoist++
				continue
			}
			if w := hs.widen(chk, d); w != nil {
				*hs.cur = append(*hs.cur, &cil.SInstr{Ins: chk}, &cil.SInstr{Ins: w})
				hs.moved[st] = true
				hs.nWiden++
				continue
			}
			// A check we cannot move pins everything after it: moving a
			// later check above this one could reorder traps.
			return false
		case *cil.Block:
			if !hs.scan(st.Stmts) {
				return false
			}
		case *cil.If:
			// Only the guard shape `if (c) break;` can be crossed: when c
			// holds the loop exits, so the rest of the prefix runs exactly
			// when !c — replayed as a nested `if (!c)` in the preheader.
			if len(st.Then.Stmts) != 1 || (st.Else != nil && len(st.Else.Stmts) != 0) {
				return false
			}
			if _, isBreak := st.Then.Stmts[0].(*cil.Break); !isBreak {
				return false
			}
			guard := negate(st.Cond)
			nb := &cil.Block{}
			*hs.cur = append(*hs.cur, &cil.If{Cond: guard, Then: nb})
			hs.cur = &nb.Stmts
			hs.nGuards++
			hs.noteInduction(guard)
		default:
			return false
		}
	}
	return true
}

// noteInduction recognizes a `v < limit` / `v <= limit` guard over a
// unit-increment local with a small constant limit, enabling widening for
// the checks that follow it.
func (hs *hoistScan) noteInduction(guard cil.Expr) {
	if hs.ind != nil || !hs.simple || hs.nGuards != 1 {
		return // widening trusts exactly one guard: the loop's own test
	}
	bo, ok := guard.(*cil.BinOp)
	if !ok || (bo.Op != cil.OpLt && bo.Op != cil.OpLe) {
		return
	}
	lv, ok := stripCasts(bo.A).(*cil.Lval)
	if !ok || lv.LV.Var == nil || len(lv.LV.Offset) != 0 || !hs.indOK[lv.LV.Var] {
		return
	}
	limit, ok := stripCasts(bo.B).(*cil.Const)
	if !ok || limit.I < 0 || limit.I > maxWidenLimit {
		return
	}
	hs.ind = &induction{v: lv.LV.Var, limit: limit.I, maxTy: limit, le: bo.Op == cil.OpLe}
}

// widen returns the endpoint companion of an induction-affine check: the
// original check (evaluated at the loop's entry value of v, under the
// guard) plus this clone at v's final value cover every iteration, because
// the checked quantity is monotone in v. Returns nil when chk is not
// widenable.
func (hs *hoistScan) widen(chk *cil.Check, d factDeps) *cil.Check {
	ind := hs.ind
	if ind == nil || !d.vars[ind.v] {
		return nil
	}
	if chk.Kind != cil.CheckSeq && chk.Kind != cil.CheckIndex {
		return nil
	}
	if !invariantIn(d, hs.kills, ind.v) {
		return nil
	}
	maxC := &cil.Const{I: ind.maxVal(), Ty: ind.maxTy.Ty}
	sub, n, monotone := substVar(chk.Ptr, ind.v, maxC)
	if n != 1 || !monotone {
		return nil
	}
	w := &cil.Check{Kind: chk.Kind, Ptr: sub, Size: chk.Size, RttiTarget: chk.RttiTarget}
	w.Pos = chk.Pos
	return w
}

// substVar clones e with reads of v replaced by rep. It returns the clone,
// the number of substitutions, and whether every substitution sits under
// operators that keep the expression monotone in v (+, -, pointer ±, unary
// minus, casts, and multiplication by a constant) — the condition for two
// endpoint checks to bound every intermediate value.
func substVar(e cil.Expr, v *cil.Var, rep cil.Expr) (cil.Expr, int, bool) {
	switch x := e.(type) {
	case *cil.Lval:
		if x.LV.Var == v && len(x.LV.Offset) == 0 {
			return rep, 1, true
		}
		// v anywhere else inside an lvalue (an index, a deref base) is not
		// a monotone position.
		found := false
		cil.WalkLvalue(x.LV, func(sub cil.Expr) {
			cil.WalkExpr(sub, func(y cil.Expr) {
				if isVarRead(y, v) {
					found = true
				}
			})
		})
		if found {
			return e, 1, false
		}
		return e, 0, true
	case *cil.BinOp:
		a, na, oka := substVar(x.A, v, rep)
		b, nb, okb := substVar(x.B, v, rep)
		n := na + nb
		if n == 0 {
			return e, 0, true
		}
		ok := oka && okb
		switch x.Op {
		case cil.OpAdd, cil.OpSub, cil.OpAddPI, cil.OpSubPI:
		case cil.OpMul:
			// Monotone only when the other operand is a constant.
			other := x.B
			if nb > 0 {
				other = x.A
			}
			if _, isConst := stripCasts(other).(*cil.Const); !isConst {
				ok = false
			}
		default:
			ok = false
		}
		return &cil.BinOp{Op: x.Op, A: a, B: b, Ty: x.Ty}, n, ok
	case *cil.UnOp:
		sub, n, ok := substVar(x.X, v, rep)
		if n == 0 {
			return e, 0, true
		}
		if x.Op != cil.OpNeg {
			ok = false
		}
		return &cil.UnOp{Op: x.Op, X: sub, Ty: x.Ty}, n, ok
	case *cil.Cast:
		sub, n, ok := substVar(x.X, v, rep)
		if n == 0 {
			return e, 0, true
		}
		c := *x
		c.X = sub
		return &c, n, ok
	case *cil.AddrOf:
		found := false
		cil.WalkLvalue(x.LV, func(sub cil.Expr) {
			cil.WalkExpr(sub, func(y cil.Expr) {
				if isVarRead(y, v) {
					found = true
				}
			})
		})
		if found {
			return e, 1, false
		}
		return e, 0, true
	default:
		return e, 0, true
	}
}

// negate returns !c, folding double negation and flipping integer
// comparisons (exact for the IR's integer conditions).
func negate(c cil.Expr) cil.Expr {
	switch x := c.(type) {
	case *cil.UnOp:
		if x.Op == cil.OpNot {
			return x.X
		}
	case *cil.BinOp:
		var flip cil.Op
		switch x.Op {
		case cil.OpLt:
			flip = cil.OpGe
		case cil.OpGe:
			flip = cil.OpLt
		case cil.OpLe:
			flip = cil.OpGt
		case cil.OpGt:
			flip = cil.OpLe
		case cil.OpEq:
			flip = cil.OpNe
		case cil.OpNe:
			flip = cil.OpEq
		default:
			return &cil.UnOp{Op: cil.OpNot, X: c, Ty: x.Ty}
		}
		return &cil.BinOp{Op: flip, A: x.A, B: x.B, Ty: x.Ty}
	}
	return &cil.UnOp{Op: cil.OpNot, X: c, Ty: c.Type()}
}

// removeMoved deletes the marked instruction statements from the tree.
func removeMoved(b *cil.Block, del map[*cil.SInstr]bool) {
	if len(del) == 0 {
		return
	}
	var out []cil.Stmt
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *cil.SInstr:
			if del[st] {
				continue
			}
		case *cil.Block:
			removeMoved(st, del)
		case *cil.If:
			removeMoved(st.Then, del)
			if st.Else != nil {
				removeMoved(st.Else, del)
			}
		case *cil.Loop:
			removeMoved(st.Body, del)
			if st.Post != nil {
				removeMoved(st.Post, del)
			}
		case *cil.Switch:
			for _, c := range st.Cases {
				inner := &cil.Block{Stmts: c.Body}
				removeMoved(inner, del)
				c.Body = inner.Stmts
			}
		}
		out = append(out, s)
	}
	b.Stmts = out
}

// ---- available-check elimination (CFG dataflow) ----

type factTable struct {
	ids  map[string]int
	deps []factDeps
}

func (t *factTable) idOf(c *cil.Check) int {
	k := factKey(c)
	if id, ok := t.ids[k]; ok {
		return id
	}
	id := len(t.deps)
	t.ids[k] = id
	t.deps = append(t.deps, depsOf(c))
	return id
}

type factSet map[int]bool

func (s factSet) clone() factSet {
	out := make(factSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s factSet) equal(o factSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// eliminateAvailable runs the availability dataflow over g and deletes
// every check whose fact already holds on all incoming paths.
func eliminateAvailable(g *cil.CFG, f *cil.Func, fo *FuncOpt, record func(*cil.Check)) {
	facts := &factTable{ids: make(map[string]int)}
	// Intern every check up front so transfer functions are cheap.
	for _, b := range g.Blocks {
		for _, si := range b.Instrs {
			if chk, ok := si.Ins.(*cil.Check); ok {
				facts.idOf(chk)
			}
		}
	}

	killVar := func(s factSet, v *cil.Var) {
		for id := range s {
			if facts.deps[id].vars[v] {
				delete(s, id)
			}
		}
	}
	killMem := func(s factSet) {
		for id := range s {
			d := facts.deps[id]
			if d.memRead || d.addrVars {
				delete(s, id)
			}
		}
	}
	killLV := func(s factSet, lv *cil.Lvalue) {
		if lv == nil {
			return
		}
		if lv.Var != nil && len(lv.Offset) == 0 {
			killVar(s, lv.Var)
			return
		}
		killMem(s)
		if lv.Var != nil {
			killVar(s, lv.Var)
		}
	}
	// transfer simulates one block over s in place; when del is non-nil it
	// collects the checks found redundant.
	transfer := func(b *cil.BBlock, s factSet, del map[*cil.SInstr]bool) {
		for _, si := range b.Instrs {
			switch in := si.Ins.(type) {
			case *cil.Check:
				id := facts.idOf(in)
				if s[id] {
					if del != nil {
						del[si] = true
					}
					continue
				}
				s[id] = true
			case *cil.Set:
				killLV(s, in.LV)
			case *cil.Call:
				killMem(s)
				killLV(s, in.Result)
			default:
				// Unknown instruction kinds forget everything.
				for id := range s {
					delete(s, id)
				}
			}
		}
	}

	rpo := g.ReversePostorder()
	out := make([]factSet, len(g.Blocks)) // nil = not yet computed (⊤)
	inOf := func(b *cil.BBlock) factSet {
		if b == g.Entry {
			return make(factSet)
		}
		var in factSet
		for _, p := range b.Preds {
			po := out[p.ID]
			if po == nil {
				continue // ⊤: drops out of the intersection
			}
			if in == nil {
				in = po.clone()
				continue
			}
			for id := range in {
				if !po[id] {
					delete(in, id)
				}
			}
		}
		if in == nil {
			in = make(factSet)
		}
		return in
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			s := inOf(b)
			transfer(b, s, nil)
			if out[b.ID] == nil || !out[b.ID].equal(s) {
				out[b.ID] = s
				changed = true
			}
		}
	}

	// Final pass: re-simulate each reachable block from its fixed IN set,
	// collecting the redundant checks, then filter the tree.
	del := make(map[*cil.SInstr]bool)
	for _, b := range rpo {
		s := inOf(b)
		transfer(b, s, del)
	}
	if len(del) == 0 {
		return
	}
	for si := range del {
		chk := si.Ins.(*cil.Check)
		fo.Eliminated++
		record(chk)
	}
	removeMoved(f.Body, del)
}

// ---- SEQ coalescing ----

// seqStride returns the byte stride of one element step of a SEQ check's
// pointer (0 when unknown).
func seqStride(lay *Layout, ptr cil.Expr) int {
	t := ptr.Type()
	if t == nil || t.Elem == nil {
		return 0
	}
	return lay.Sizeof(t.Elem)
}

// splitConstOffset decomposes a checked pointer into (base, constant
// element offset): `p + 3` -> (p, 3), anything else -> (e, 0).
func splitConstOffset(e cil.Expr) (cil.Expr, int64) {
	if bo, ok := e.(*cil.BinOp); ok {
		if c, isC := stripCasts(bo.B).(*cil.Const); isC {
			switch bo.Op {
			case cil.OpAddPI:
				return bo.A, c.I
			case cil.OpSubPI:
				return bo.A, -c.I
			}
		}
	}
	return e, 0
}

// coalesceSeq merges runs of adjacent SEQ checks on the same base pointer
// with constant offsets into the first check of the run, widened to cover
// the whole range. Only immediately adjacent checks merge: any intervening
// instruction (even another check) ends the group, so no trap can move
// across an observable effect or a different check's trap site.
func coalesceSeq(b *cil.Block, lay *Layout, fo *FuncOpt, record func(*cil.Check)) {
	del := make(map[*cil.SInstr]bool)
	var walk func(stmts []cil.Stmt)
	walk = func(stmts []cil.Stmt) {
		type member struct {
			si  *cil.SInstr
			chk *cil.Check
			off int64
		}
		var group []member
		var baseKey string
		var stride int
		flush := func() {
			if len(group) > 1 {
				first := group[0]
				minOff, maxOff := first.off, first.off
				ok := true
				for _, m := range group[1:] {
					if m.off < minOff {
						// The group head must carry the minimum offset: the
						// widened check starts at the head's pointer value,
						// so a smaller later offset would escape it (and
						// could turn a null trap into a bounds trap).
						ok = false
						break
					}
					if m.off > maxOff {
						maxOff = m.off
					}
				}
				if ok && stride > 0 && (maxOff-minOff)*int64(stride) < 1<<20 {
					first.chk.Size += int(maxOff-minOff) * stride
					for _, m := range group[1:] {
						del[m.si] = true
						fo.Coalesced++
						record(m.chk)
					}
				}
			}
			group = group[:0]
		}
		for _, s := range stmts {
			switch st := s.(type) {
			case *cil.SInstr:
				chk, isChk := st.Ins.(*cil.Check)
				if !isChk || chk.Kind != cil.CheckSeq {
					flush()
					continue
				}
				base, off := splitConstOffset(chk.Ptr)
				var kb strings.Builder
				keyExpr(&kb, base)
				fmt.Fprintf(&kb, "|%d", chk.Size)
				k := kb.String()
				str := seqStride(lay, chk.Ptr)
				if len(group) > 0 && (k != baseKey || str != stride) {
					flush()
				}
				if len(group) == 0 {
					baseKey, stride = k, str
				}
				group = append(group, member{si: st, chk: chk, off: off})
			case *cil.Block:
				flush()
				walk(st.Stmts)
			case *cil.If:
				flush()
				walk(st.Then.Stmts)
				if st.Else != nil {
					walk(st.Else.Stmts)
				}
			case *cil.Loop:
				flush()
				walk(st.Body.Stmts)
				if st.Post != nil {
					walk(st.Post.Stmts)
				}
			case *cil.Switch:
				flush()
				for _, c := range st.Cases {
					walk(c.Body)
				}
			default:
				flush()
			}
		}
		flush()
	}
	walk(b.Stmts)
	removeMoved(b, del)
}
