package cparse

import (
	"testing"

	"gocured/internal/ctypes"
	"gocured/internal/diag"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	var d diag.List
	f := Parse("test.c", src, &d)
	if d.HasErrors() {
		t.Fatalf("parse errors:\n%v", d.Err())
	}
	return f
}

func TestLexBasics(t *testing.T) {
	var d diag.List
	toks := LexAll("t.c", `int x = 0x1F + 'a'; // comment
/* block */ char *s = "hi\n" "there";`, &d)
	if d.HasErrors() {
		t.Fatalf("lex errors: %v", d.Err())
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokKind{KwInt, IDENT, ASSIGN, INTLIT, PLUS, CHARLIT, SEMI,
		KwChar, STAR, IDENT, ASSIGN, STRLIT, SEMI, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, kinds[i], want[i])
		}
	}
	if toks[3].Int != 0x1F {
		t.Errorf("hex literal = %d, want 31", toks[3].Int)
	}
	if toks[5].Int != 'a' {
		t.Errorf("char literal = %d, want %d", toks[5].Int, 'a')
	}
	if toks[11].Text != "hi\nthere" {
		t.Errorf("string literal = %q (concatenation)", toks[11].Text)
	}
}

func TestParseFunctionAndTypes(t *testing.T) {
	f := parseOK(t, `
struct Figure { double (*area)(struct Figure *obj); };
struct Circle { double (*area)(struct Figure *obj); int radius; };

typedef struct Circle Circle;

double circle_area(struct Figure *obj) {
    Circle *cir = (Circle*)obj;
    return 3.14159 * cir->radius * cir->radius;
}

int main(void) {
    struct Circle c;
    c.radius = 2;
    return 0;
}
`)
	if len(f.Funcs) != 2 {
		t.Fatalf("got %d functions, want 2", len(f.Funcs))
	}
	if len(f.Structs) < 2 {
		t.Fatalf("got %d structs, want >= 2", len(f.Structs))
	}
	ca := f.Funcs[0]
	if ca.Name != "circle_area" || ca.Type.Kind != ctypes.Func {
		t.Fatalf("bad first function: %s %s", ca.Name, ca.Type)
	}
	if ca.Type.Fn.Ret.Kind != ctypes.Float || ca.Type.Fn.Ret.Size != 8 {
		t.Errorf("return type = %s, want double", ca.Type.Fn.Ret)
	}
	if len(ca.Type.Fn.Params) != 1 || !ca.Type.Fn.Params[0].IsPointer() {
		t.Errorf("params = %v", ca.Type.Fn.Params)
	}
}

func TestParseFunctionPointerField(t *testing.T) {
	f := parseOK(t, `struct Ops { int (*get)(char *name, int dflt); void (*put)(int); };`)
	su := f.Structs[0]
	if len(su.Fields) != 2 {
		t.Fatalf("fields = %d, want 2", len(su.Fields))
	}
	g := su.Fields[0].Type
	if !g.IsFuncPtr() {
		t.Fatalf("field get has type %s, want function pointer", g)
	}
	if len(g.Elem.Fn.Params) != 2 {
		t.Errorf("get params = %d, want 2", len(g.Elem.Fn.Params))
	}
}

func TestParseDeclaratorShapes(t *testing.T) {
	f := parseOK(t, `
int a;
int *p;
int **pp;
int arr[10];
int *parr[4];
int (*arrp)[8];
char *strs[3];
int matrix[3][5];
`)
	byName := map[string]*ctypes.Type{}
	for _, g := range f.Globals {
		byName[g.Name] = g.Type
	}
	check := func(name, want string) {
		t.Helper()
		ty, ok := byName[name]
		if !ok {
			t.Fatalf("missing global %q", name)
		}
		if got := ty.String(); got != want {
			t.Errorf("%s: type %s, want %s", name, got, want)
		}
	}
	check("a", "int")
	check("p", "int*")
	check("pp", "int**")
	check("arr", "int[10]")
	check("parr", "int*[4]")
	check("arrp", "int[8]*")
	check("matrix", "int[5][3]")
}

func TestParseEnumAndConstExpr(t *testing.T) {
	f := parseOK(t, `
enum Color { RED, GREEN = 5, BLUE };
int buf[GREEN + BLUE];
int x = BLUE;
`)
	byName := map[string]*VarDecl{}
	for _, g := range f.Globals {
		byName[g.Name] = g
	}
	if ty := byName["buf"].Type; ty.Len != 11 {
		t.Errorf("buf length = %d, want 11", ty.Len)
	}
	lit, ok := byName["x"].Init.Expr.(*IntLit)
	if !ok || lit.Val != 6 {
		t.Errorf("x initializer = %#v, want 6", byName["x"].Init.Expr)
	}
}

func TestParseAnnotations(t *testing.T) {
	f := parseOK(t, `
int * __SAFE sp;
int * __SEQ qp;
int * __WILD wp;
struct H { int x; };
struct H __SPLIT * __SAFE h;
`)
	anns := map[string]ctypes.KindAnn{}
	for _, g := range f.Globals {
		if g.Type.IsPointer() {
			anns[g.Name] = g.Type.Ann
		}
	}
	if anns["sp"] != ctypes.AnnSafe || anns["qp"] != ctypes.AnnSeq || anns["wp"] != ctypes.AnnWild {
		t.Errorf("annotations = %v", anns)
	}
	var h *VarDecl
	for _, g := range f.Globals {
		if g.Name == "h" {
			h = g
		}
	}
	if h.Type.Ann != ctypes.AnnSafe {
		t.Errorf("h pointer annotation = %d, want SAFE", h.Type.Ann)
	}
	if h.Type.Elem.SplitAnnot != ctypes.SAnnSplit {
		t.Errorf("h base split annotation = %d, want SPLIT", h.Type.Elem.SplitAnnot)
	}
}

func TestParseWrapperPragma(t *testing.T) {
	f := parseOK(t, `
#pragma ccuredWrapperOf("strchr_wrapper", "strchr")
char *strchr_wrapper(char *str, int chr);
`)
	if len(f.Wrappers) != 1 {
		t.Fatalf("wrappers = %d, want 1", len(f.Wrappers))
	}
	w := f.Wrappers[0]
	if w.Wrapper != "strchr_wrapper" || w.Wrapped != "strchr" {
		t.Errorf("wrapper = %+v", w)
	}
}

func TestParseControlFlow(t *testing.T) {
	f := parseOK(t, `
int classify(int x) {
    int total = 0;
    for (int i = 0; i < x; i++) {
        if (i % 2 == 0) continue;
        total += i;
    }
    while (total > 100) total /= 2;
    do { total--; } while (total > 50);
    switch (total) {
    case 0: return -1;
    case 1:
    case 2: total = 9; break;
    default: break;
    }
    return total ? total : 1;
}
`)
	if len(f.Funcs) != 1 || f.Funcs[0].Body == nil {
		t.Fatal("expected one defined function")
	}
}

func TestParseTrustedCast(t *testing.T) {
	f := parseOK(t, `
typedef struct Obj { int tag; } Obj;
Obj *alloc_obj(char *raw) {
    return __trusted_cast(Obj *, raw);
}
`)
	fn := f.Funcs[0]
	ret := fn.Body.Stmts[0].(*Return)
	cast, ok := ret.X.(*Cast)
	if !ok || !cast.Trusted {
		t.Fatalf("expected trusted cast, got %#v", ret.X)
	}
}

func TestParseErrorsReported(t *testing.T) {
	var d diag.List
	Parse("bad.c", `int f( { }`, &d)
	if !d.HasErrors() {
		t.Error("expected parse errors for malformed input")
	}
	var d2 diag.List
	Parse("bad2.c", `int x = ;`, &d2)
	if !d2.HasErrors() {
		t.Error("expected parse errors for missing initializer")
	}
}

func TestParseStringEscape(t *testing.T) {
	f := parseOK(t, `char *s = "a\tb\0c\x41";`)
	in := f.Globals[0].Init.Expr.(*StrLit)
	if in.Val != "a\tb\x00cA" {
		t.Errorf("string = %q", in.Val)
	}
}

func TestParseGlobalInitializers(t *testing.T) {
	f := parseOK(t, `
struct Point { int x; int y; };
struct Point origin = { 0, 0 };
struct Point corners[2] = { {1, 2}, {3, 4} };
int nums[] = { 1, 2, 3 };
`)
	if len(f.Globals) != 3 {
		t.Fatalf("globals = %d, want 3", len(f.Globals))
	}
	if !f.Globals[1].Init.IsList || len(f.Globals[1].Init.List) != 2 {
		t.Errorf("corners initializer malformed")
	}
}
