// Command ccbench regenerates every table and figure of the paper's
// evaluation on the gocured corpus.
//
// Usage:
//
//	ccbench [-scale N] [-j N] [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gocured/internal/experiments"
	"gocured/internal/pipeline"
)

func main() {
	scale := flag.Int("scale", 0, "override the corpus SCALE constant (0 = source default)")
	jobs := flag.Int("j", runtime.NumCPU(), "concurrent curing/execution jobs")
	only := flag.String("only", "", "run a single experiment by id (E1..E10)")
	optJSON := flag.String("opt-json", "", "write the E10 -O0 vs -O comparison to this file as JSON (BENCH_opt.json)")
	flag.Parse()

	cfg := experiments.Config{
		Scale:  *scale,
		Jobs:   *jobs,
		Runner: pipeline.NewRunner(pipeline.RunnerOptions{Workers: *jobs}),
	}
	all := map[string]func(experiments.Config) *experiments.Table{
		"E1":  experiments.CastClassification,
		"E2":  experiments.Fig8Apache,
		"E3":  experiments.Fig9System,
		"E4":  experiments.IjpegRTTI,
		"E5":  experiments.MicroSuite,
		"E6":  experiments.SplitOverhead,
		"E7":  experiments.BindCasts,
		"E8":  experiments.SplitStats,
		"E9":  experiments.Exploits,
		"E10": experiments.OptOverhead,
	}
	if *optJSON != "" {
		b, err := experiments.WriteOptBench(cfg, *optJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: dynamic checks %d (-O0) -> %d (-O), %.1f%% eliminated\n",
			*optJSON, b.TotalChecksO0, b.TotalChecksO, b.DynReductionPct)
		return
	}
	if *only != "" {
		fn, ok := all[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (E1..E10)\n", *only)
			os.Exit(2)
		}
		fmt.Println(fn(cfg).Format())
		return
	}
	for _, t := range experiments.All(cfg) {
		fmt.Println(t.Format())
	}
	m := cfg.Runner.Metrics()
	fmt.Printf("-- pipeline: %d jobs on %d workers, cache %d/%d hit/miss, compile mean %.1fms, run mean %.1fms\n",
		m.JobsRun, m.Workers, m.Cache.Hits, m.Cache.Misses,
		m.CompileWall.MeanMS(), m.RunWall.MeanMS())
}
