package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"time"

	"gocured"
	"gocured/internal/corpus"
	"gocured/internal/pipeline"
	"gocured/internal/store"
)

// E12: artifact-store warmth. Every corpus program is compiled three times
// against one persistent chunk store:
//
//	cold   an empty (or pre-warmed — see the CI gate) store: per-function
//	       summaries are recorded and written as chunks
//	warm   the same source again: every storable function's constraints
//	       replay from disk instead of being re-collected
//	edit   a one-line edit to one function body: only that function (plus
//	       any unstorable ones) re-cures; the rest replay
//
// The warm and edit builds are verified bit-identical to the cold one
// (same Stats) — the store changes compile time, never results. Running
// ccbench -store-json twice against the same directory is the CI
// warm-restart gate: the second run's "cold" phase is served entirely from
// the first run's chunks, so its cold_recured must equal unstorable (zero
// recompiles of storable functions across a process restart).

// StoreBenchRow is one program's cold/warm/edit measurement.
type StoreBenchRow struct {
	Name  string `json:"name"`
	Funcs int    `json:"funcs"`

	ColdMS      float64 `json:"cold_ms"`
	ColdRecured int     `json:"cold_recured"`
	WarmMS      float64 `json:"warm_ms"`
	WarmLoaded  int     `json:"warm_loaded"`
	WarmRecured int     `json:"warm_recured"`
	// Unstorable functions re-cure on every compile (an operand occurrence
	// had no symbolic name); zero across today's corpus.
	Unstorable int `json:"unstorable,omitempty"`
	// WarmSpeedup is cold_ms/warm_ms (indicative wall time; the recure
	// counts are the deterministic signal).
	WarmSpeedup float64 `json:"warm_speedup"`

	// Edit phase, for programs the one-line edit applies to.
	Edited      bool    `json:"edited,omitempty"`
	EditMS      float64 `json:"edit_ms,omitempty"`
	EditRecured int     `json:"edit_recured,omitempty"`
	// EditPct is the fraction of functions re-cured by the edit (the
	// incremental-re-curing acceptance bar is < 10% for programs with at
	// least 10 functions).
	EditPct float64 `json:"edit_pct,omitempty"`
}

// StoreBench is the full artifact-store measurement, serialized to
// BENCH_store.json.
type StoreBench struct {
	Scale int             `json:"scale"`
	Rows  []StoreBenchRow `json:"rows"`

	TotalFuncs  int `json:"total_funcs"`
	ColdRecured int `json:"cold_recured"`
	WarmLoaded  int `json:"warm_loaded"`
	WarmRecured int `json:"warm_recured"`
	Unstorable  int `json:"unstorable"`

	EditedFuncs int     `json:"edited_funcs"`
	EditRecured int     `json:"edit_recured"`
	EditPct     float64 `json:"edit_pct"`

	GeomeanWarmSpeedup float64 `json:"geomean_warm_speedup"`

	// Store snapshots the chunk store after the measurement.
	Store store.Stats `json:"store"`
}

// editSource applies the canonical one-line edit: a dead statement spliced
// into one function body on an existing line, so no other function's
// fingerprint (which includes positions) shifts. Returns ok=false when the
// program has no splice point.
func editSource(src string) (string, bool) {
	if !strings.Contains(src, "int i;") {
		return "", false
	}
	return strings.Replace(src, "int i;", "int i; if (0) { i = 1; }", 1), true
}

// MeasureStore compiles every corpus program cold/warm/edited against the
// chunk store rooted at dir (created if needed; pass an existing directory
// to measure a pre-warmed store).
func MeasureStore(cfg Config, dir string) (*StoreBench, error) {
	arts, err := pipeline.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	progs := corpus.All()
	bench := &StoreBench{Scale: cfg.Scale, Rows: make([]StoreBenchRow, len(progs))}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, p := range progs {
		wg.Add(1)
		go func(i int, p *corpus.Program) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bench.Rows[i] = measureStoreOne(arts, p, cfg.Scale)
		}(i, p)
	}
	wg.Wait()

	logSpeedups := 0.0
	for _, r := range bench.Rows {
		bench.TotalFuncs += r.Funcs
		bench.ColdRecured += r.ColdRecured
		bench.WarmLoaded += r.WarmLoaded
		bench.WarmRecured += r.WarmRecured
		bench.Unstorable += r.Unstorable
		if r.Edited {
			bench.EditedFuncs += r.Funcs
			bench.EditRecured += r.EditRecured
		}
		logSpeedups += math.Log(r.WarmSpeedup)
	}
	if n := len(bench.Rows); n > 0 {
		bench.GeomeanWarmSpeedup = math.Exp(logSpeedups / float64(n))
	}
	if bench.EditedFuncs > 0 {
		bench.EditPct = 100 * float64(bench.EditRecured) / float64(bench.EditedFuncs)
	}
	bench.Store = arts.Store().Stats()
	return bench, nil
}

func measureStoreOne(arts *store.Artifacts, p *corpus.Program, scale int) StoreBenchRow {
	src := p.Source
	if scale > 0 {
		src = corpus.WithScale(p, scale)
	}
	opts := defaultOpts(p)
	sums := arts.ForOptions(opts)
	build := func(source string) (*gocured.Program, gocured.IncrStats, float64) {
		t0 := time.Now()
		prog, err := gocured.CompileStored(p.Name+".c", source, opts, sums)
		ms := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			panic(fmt.Sprintf("storebench: build %s: %v", p.Name, err))
		}
		return prog, prog.IncrStats(), ms
	}
	cold, coldIncr, coldMS := build(src)
	warm, warmIncr, warmMS := build(src)
	if warm.Stats() != cold.Stats() {
		panic(fmt.Sprintf("storebench: %s warm build diverges from cold", p.Name))
	}
	row := StoreBenchRow{
		Name:        p.Name,
		Funcs:       coldIncr.Funcs,
		ColdMS:      coldMS,
		ColdRecured: coldIncr.Recured,
		WarmMS:      warmMS,
		WarmLoaded:  warmIncr.Loaded,
		WarmRecured: warmIncr.Recured,
		Unstorable:  warmIncr.Unstorable,
		WarmSpeedup: coldMS / math.Max(warmMS, 0.001),
	}
	if edited, ok := editSource(src); ok {
		t0 := time.Now()
		prog, err := gocured.CompileStored(p.Name+".c", edited, opts, sums)
		row.EditMS = float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			panic(fmt.Sprintf("storebench: build edited %s: %v", p.Name, err))
		}
		row.Edited = true
		row.EditRecured = prog.IncrStats().Recured
		if row.Funcs > 0 {
			row.EditPct = 100 * float64(row.EditRecured) / float64(row.Funcs)
		}
	}
	return row
}

// StoreWarmth renders E12 as a table, measuring against a throwaway store.
func StoreWarmth(cfg Config) *Table {
	dir, err := os.MkdirTemp("", "gocured-storebench-")
	if err != nil {
		panic(fmt.Sprintf("storebench: %v", err))
	}
	defer os.RemoveAll(dir)
	b, err := MeasureStore(cfg, dir)
	if err != nil {
		panic(fmt.Sprintf("storebench: %v", err))
	}
	t := &Table{
		ID:    "E12",
		Title: "artifact store: cold vs warm vs one-line-edit compiles",
		Note: "warm replays per-function summaries from the chunk store;\n" +
			"edit re-cures only the edited function (- = program has no edit point)",
		Header: []string{"program", "funcs", "cold ms", "warm ms", "warm recured",
			"edit ms", "edit recured", "edit %"},
	}
	for _, r := range b.Rows {
		editMS, editN, editPct := "-", "-", "-"
		if r.Edited {
			editMS = fmt.Sprintf("%.1f", r.EditMS)
			editN = fmt.Sprint(r.EditRecured)
			editPct = fmt.Sprintf("%.0f", r.EditPct)
		}
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprint(r.Funcs),
			fmt.Sprintf("%.1f", r.ColdMS), fmt.Sprintf("%.1f", r.WarmMS),
			fmt.Sprint(r.WarmRecured), editMS, editN, editPct,
		})
	}
	t.Rows = append(t.Rows, []string{
		"TOTAL", fmt.Sprint(b.TotalFuncs), "", "",
		fmt.Sprint(b.WarmRecured), "", fmt.Sprint(b.EditRecured),
		fmt.Sprintf("%.0f", b.EditPct),
	})
	return t
}

// WriteStoreBench runs MeasureStore against dir and writes the result as
// indented JSON — the BENCH_store.json artifact tracked in the repository
// and uploaded by CI.
func WriteStoreBench(cfg Config, dir, path string) (*StoreBench, error) {
	b, err := MeasureStore(cfg, dir)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return b, os.WriteFile(path, append(data, '\n'), 0o644)
}
