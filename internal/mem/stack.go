package mem

// Stack support: a dedicated region in which call frames push and pop, so
// long-running programs reuse stack memory instead of growing the arena.
// Popped frames leave their bytes in place (dangling pointers read garbage,
// as in real C) until the next push overwrites them.

// InitStack reserves a stack region of the given size. Must be called once
// before PushFrame.
func (m *Memory) InitStack(size uint32) {
	if m.stackBase != 0 {
		return
	}
	base := align8(m.brk)
	m.extend(base + size + allocSlack)
	m.brk = base + size
	m.stackBase = base
	m.stackSize = size
	m.sp = base
}

// InStack reports whether addr lies in the stack region.
func (m *Memory) InStack(addr uint32) bool {
	return m.stackBase != 0 && addr >= m.stackBase && addr < m.stackBase+m.stackSize
}

// PushFrame allocates a zeroed stack frame.
func (m *Memory) PushFrame(size uint32, name string) (*Block, error) {
	if size == 0 {
		size = 8
	}
	addr := align8(m.sp)
	if addr+size > m.stackBase+m.stackSize {
		return nil, NewTrap("stack-overflow", "stack overflow pushing frame %q (%d bytes)", name, size)
	}
	// Zero the frame (locals read as 0 until initialized; see DESIGN.md).
	for i := addr; i < addr+size; i++ {
		m.arena[i] = 0
	}
	b := &Block{ID: m.nextID, Addr: addr, Size: size, Region: RegStack, Name: name}
	m.nextID++
	m.stack = append(m.stack, b)
	m.sp = addr + size
	return b, nil
}

// PopFrame releases the most recent frame.
func (m *Memory) PopFrame() {
	if len(m.stack) == 0 {
		return
	}
	b := m.stack[len(m.stack)-1]
	b.Dead = true
	m.stack = m.stack[:len(m.stack)-1]
	m.sp = b.Addr
}

// stackBlockAt finds the live frame containing addr (frames are contiguous
// and sorted by address).
func (m *Memory) stackBlockAt(addr uint32) *Block {
	for i := len(m.stack) - 1; i >= 0; i-- {
		if m.stack[i].Contains(addr) {
			return m.stack[i]
		}
		if m.stack[i].Addr <= addr {
			break
		}
	}
	return nil
}
