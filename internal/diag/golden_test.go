package diag_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gocured/internal/diag"
	"gocured/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update to regenerate)\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestDiagnosticListGolden pins the rendered form of a sorted diagnostic
// list: position-prefixed, severity-labelled, generated positions last.
func TestDiagnosticListGolden(t *testing.T) {
	var l diag.List
	l.Warnf(diag.Pos{File: "b.c", Line: 2, Col: 4}, "cast from %s to %s is unverifiable", "int *", "struct T *")
	l.Errorf(diag.Pos{File: "a.c", Line: 9, Col: 1}, "pointer arithmetic on WILD pointer")
	l.Notef(diag.Pos{}, "5 checks inserted")
	l.Warnf(diag.Pos{File: "a.c", Line: 1, Col: 2}, "unused cure annotation")

	var b strings.Builder
	for _, d := range l.All() {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	checkGolden(t, "diagnostics.golden", b.String())
}

// TestBlameChainGolden pins the blame-chain rendering that -explain and
// trap provenance reports are built from: one header naming the target and
// its kind, one line per constraint edge with category/rule/position, and
// the forcing seed last.
func TestBlameChainGolden(t *testing.T) {
	p := trace.NewProv()
	p.Describe(3, "int *")
	p.Describe(7, "int *")
	p.Describe(9, "struct T *")
	p.AddEdge(3, 7, trace.CatFlow, "call-arg", diag.Pos{File: "w.c", Line: 4, Col: 11})
	p.AddEdge(7, 9, trace.CatUnify, "cast-identity", diag.Pos{File: "w.c", Line: 8, Col: 5})
	p.AddSeed(9, "bad-cast", diag.Pos{File: "w.c", Line: 8, Col: 16}, "struct T * incompatible with int *")

	ch := p.Explain(3, trace.GoalWild)
	if ch == nil {
		t.Fatal("no chain")
	}
	checkGolden(t, "blame.golden", ch.Render())
}
