package corpus

import (
	"fmt"
	"strings"
)

// ijpeg-like workload. The paper reports that Spec95's ijpeg is written in
// an object-oriented style with a subtyping hierarchy of about 40 types and
// 100 downcasts; under the original CCured ~60% of its pointers went WILD
// (115% slowdown), while RTTI eliminated all bad casts with only 1% of
// pointers RTTI (45% slowdown). We generate the same shape: a Component
// base type, 40 physical subtypes with per-type process/tune methods (two
// checked downcasts each), dynamic dispatch over a pipeline, and image
// data to crunch.

func genIjpeg() string {
	var b strings.Builder
	b.WriteString(Prelude)
	b.WriteString(`
enum { SCALE = 2, NCOMP = 40, IMGW = 24, IMGH = 16, IMGSZ = IMGW * IMGH };

struct Component {
    int (*process)(struct Component *c);
    int (*tune)(struct Component *c, int knob);
    int kind;
    int calls;
    int *data;      /* the image plane this component transforms */
};
`)
	for i := 0; i < 40; i++ {
		variant := i % 4
		var extra string
		switch variant {
		case 0:
			extra = "int scale_q;\n    int bias;"
		case 1:
			extra = "int coeffs[8];"
		case 2:
			extra = "double gain;\n    int dct_shift;"
		case 3:
			extra = "int lut[16];\n    int rounds;"
		}
		fmt.Fprintf(&b, `
struct Comp%[1]d {
    int (*process)(struct Component *c);
    int (*tune)(struct Component *c, int knob);
    int kind;
    int calls;
    int *data;
    %[2]s
};
`, i, extra)

		var body, tune string
		switch variant {
		case 0:
			body = fmt.Sprintf(`
    int i;
    for (i = 0; i < IMGSZ; i++) {
        img[i] = (img[i] * self->scale_q + self->bias) %% 4093;
    }
    return self->scale_q;`)
			tune = "self->scale_q = 1 + (self->scale_q + knob) % 31;\n    return self->scale_q;"
		case 1:
			body = `
    int i;
    for (i = 0; i + 8 <= IMGSZ; i += 8) {
        int k, acc = 0;
        for (k = 0; k < 8; k++) acc += img[i + k] * self->coeffs[k];
        img[i] = acc % 2039;
    }
    return img[0];`
			tune = "self->coeffs[knob & 7] = (self->coeffs[knob & 7] + knob) % 17;\n    return self->coeffs[knob & 7];"
		case 2:
			body = `
    int i;
    for (i = 0; i < IMGSZ; i++) {
        double v = (double)img[i] * self->gain;
        img[i] = ((int)v) >> self->dct_shift;
        if (img[i] < 0) img[i] = -img[i];
    }
    return self->dct_shift;`
			tune = "self->dct_shift = (self->dct_shift + knob) % 4 + 1;\n    return self->dct_shift;"
		case 3:
			body = `
    int i, r;
    for (r = 0; r < self->rounds; r++) {
        for (i = 0; i < IMGSZ; i++) {
            img[i] = self->lut[img[i] & 15] + (img[i] >> 4);
        }
    }
    return self->rounds;`
			tune = "self->lut[knob & 15] = (self->lut[knob & 15] * 5 + 1) % 251;\n    return self->lut[knob & 15];"
		}

		fmt.Fprintf(&b, `
int process%[1]d(struct Component *c) {
    struct Comp%[1]d *self = (struct Comp%[1]d *)c;   /* checked downcast */
    int *img = self->data;
    c->calls++;
    {%[2]s
    }
}

int tune%[1]d(struct Component *c, int knob) {
    struct Comp%[1]d *self = (struct Comp%[1]d *)c;   /* checked downcast */
    %[3]s
}

struct Component *make%[1]d(int *img) {
    struct Comp%[1]d *self = (struct Comp%[1]d *)malloc(sizeof(struct Comp%[1]d));
    self->process = process%[1]d;
    self->tune = tune%[1]d;
    self->kind = %[1]d;
    self->calls = 0;
    self->data = img;
`, i, body, tune)
		switch variant {
		case 0:
			fmt.Fprintf(&b, "    self->scale_q = %d;\n    self->bias = %d;\n", 3+i%7, i)
		case 1:
			b.WriteString("    { int k; for (k = 0; k < 8; k++) self->coeffs[k] = k + 1; }\n")
		case 2:
			fmt.Fprintf(&b, "    self->gain = %d.25;\n    self->dct_shift = %d;\n", 1+i%3, 1+i%3)
		case 3:
			fmt.Fprintf(&b, "    { int k; for (k = 0; k < 16; k++) self->lut[k] = (k * %d) %% 251; }\n    self->rounds = %d;\n", 7+i%5, 1+i%3)
		}
		b.WriteString("    return (struct Component *)self;      /* upcast */\n}\n")
	}

	b.WriteString(`
struct Component *pipeline[NCOMP];

void build_pipeline(int *img) {
    int i = 0;
`)
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "    pipeline[i] = make%d(img); i++;\n", i)
	}
	b.WriteString(`}

int main(void) {
    int *img = (int *)malloc(IMGSZ * sizeof(int));
    int iter, i, pass, check = 0;
    build_pipeline(img);
    for (i = 0; i < IMGSZ; i++) img[i] = (i * 37) % 256;
    for (iter = 0; iter < SCALE; iter++) {
        for (pass = 0; pass < 2; pass++) {
            for (i = 0; i < NCOMP; i++) {
                check += pipeline[i]->process(pipeline[i]);
                check += pipeline[i]->tune(pipeline[i], pass * 3 + i);
                check = check % 1000000007;
            }
        }
    }
    for (i = 0; i < IMGSZ; i++) check = (check + img[i]) % 1000000007;
    printf("ijpeg components=%d check=%d\n", NCOMP, check);
    return 0;
}
`)
	return b.String()
}

var _ = register(&Program{
	Name:     "ijpeg",
	Category: "spec",
	Desc:     "ijpeg-like: 40-type OO hierarchy, dynamic dispatch, ~80 checked downcasts",
	Source:   genIjpeg(),
})
