package interp_test

import (
	"fmt"
	"strings"
	"testing"

	"gocured/internal/core"
	"gocured/internal/infer"
	"gocured/internal/interp"
)

// Differential testing: generate random (UB-free) C programs and demand
// that the raw and cured executions agree exactly. This is the strongest
// form of the semantics-preservation property — any divergence between the
// kind-aware fat layout and the plain C layout, or any over-eager check,
// shows up as a mismatch or an unexpected trap.

type progGen struct {
	rng   uint64
	b     strings.Builder
	depth int
}

func (g *progGen) next() uint64 {
	g.rng = g.rng*6364136223846793005 + 1442695040888963407
	return g.rng >> 17
}

func (g *progGen) pick(n int) int { return int(g.next() % uint64(n)) }

// expr emits an int-valued expression over the in-scope names.
func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.pick(3) == 0 {
		switch g.pick(4) {
		case 0:
			return fmt.Sprintf("%d", g.pick(100))
		case 1:
			return fmt.Sprintf("v%d", g.pick(3))
		case 2:
			return fmt.Sprintf("arr[%d]", g.pick(8))
		default:
			return fmt.Sprintf("g%d", g.pick(2))
		}
	}
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.pick(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / (1 + ((%s) & 7)))", a, b) // no div-by-zero
	case 4:
		return fmt.Sprintf("(%s %% (1 + ((%s) & 15)))", a, b)
	case 5:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	default:
		return fmt.Sprintf("(%s < %s)", a, b)
	}
}

func (g *progGen) stmt(depth int) {
	ind := strings.Repeat("    ", g.depth+1)
	switch g.pick(6) {
	case 0:
		fmt.Fprintf(&g.b, "%sv%d = %s;\n", ind, g.pick(3), g.expr(depth))
	case 1:
		// In-bounds array store (index masked to the array length).
		fmt.Fprintf(&g.b, "%sarr[(%s) & 7] = %s;\n", ind, g.expr(1), g.expr(depth))
	case 2:
		fmt.Fprintf(&g.b, "%sg%d += %s;\n", ind, g.pick(2), g.expr(depth))
	case 3:
		if depth > 0 {
			fmt.Fprintf(&g.b, "%sif (%s) {\n", ind, g.expr(1))
			g.depth++
			g.stmt(depth - 1)
			g.depth--
			fmt.Fprintf(&g.b, "%s}\n", ind)
		} else {
			fmt.Fprintf(&g.b, "%sv0 = v0 + 1;\n", ind)
		}
	case 4:
		// Bounded loop over the array through a pointer.
		fmt.Fprintf(&g.b, "%sfor (i = 0; i < 8; i++) { p = arr + i; acc += *p; }\n", ind)
	default:
		fmt.Fprintf(&g.b, "%sacc += helper(v%d, arr);\n", ind, g.pick(3))
	}
}

// generate produces one random program.
func generate(seed uint64) string {
	g := &progGen{rng: seed*2654435761 + 1}
	g.b.WriteString(`
extern int printf(char *fmt, ...);
int g0 = 3;
int g1 = 7;

int helper(int x, int *a) {
    int k, t = x;
    for (k = 0; k < 8; k++) t += a[k] * (k + 1);
    return t;
}

int main(void) {
    int v0 = 1, v1 = 2, v2 = 3;
    int arr[8];
    int *p = arr;
    int i, acc = 0;
    for (i = 0; i < 8; i++) arr[i] = i * 5;
`)
	n := 6 + g.pick(8)
	for i := 0; i < n; i++ {
		g.stmt(2)
	}
	g.b.WriteString(`
    acc += v0 + 2 * v1 + 3 * v2 + g0 + g1 + *p;
    for (i = 0; i < 8; i++) acc = acc * 31 + arr[i];
    printf("%d\n", acc);
    return 0;
}
`)
	return g.b.String()
}

func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := generate(seed)
			u, err := core.Build("fuzz.c", src, infer.Options{})
			if err != nil {
				t.Fatalf("build failed:\n%s\n%v", src, err)
			}
			raw, err := u.RunRaw(interp.PolicyNone, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if raw.Trap != nil {
				t.Fatalf("raw trap (generator emitted UB?):\n%s\n%v", src, raw.Trap)
			}
			cured, err := u.RunCured(interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if cured.Trap != nil {
				t.Fatalf("cured trap on a correct program:\n%s\n%v", src, cured.Trap)
			}
			if raw.Stdout != cured.Stdout {
				t.Fatalf("divergence on seed %d:\nraw:   %q\ncured: %q\nprogram:\n%s",
					seed, raw.Stdout, cured.Stdout, src)
			}
		})
	}
}
