module gocured

go 1.22
