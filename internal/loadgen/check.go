package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"gocured/internal/flight"
	"gocured/internal/pipeline"
)

// RequiredCompileSpans lists the span names a full-compile request trace
// must contain for the post-run trace check: the request envelope, queue
// wait, the compile window, and every front-end phase the core emits.
// Cache-tier spans are checked separately by prefix (cache-compile,
// cache-disk, ...) since the tier name varies.
var RequiredCompileSpans = []string{
	"request", "queue-wait", "compile",
	"parse", "sema", "lower", "infer", "instrument",
}

// WaitReady polls GET /readyz until it returns 200 or the timeout lapses.
func WaitReady(ctx context.Context, client *http.Client, baseURL string, timeout time.Duration) error {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("readyz: status %d: %.200s", resp.StatusCode, body)
		} else {
			last = err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
	return fmt.Errorf("loadgen: server not ready after %v: %w", timeout, last)
}

// TraceCheck records the outcome of validating one request trace fetched
// from GET /traces/{id}.
type TraceCheck struct {
	OK      bool     `json:"ok"`
	TraceID string   `json:"trace_id"`
	Events  int      `json:"events"`
	Spans   []string `json:"spans,omitempty"`
	Missing []string `json:"missing,omitempty"`
	Err     string   `json:"error,omitempty"`
}

// CheckTrace fetches /traces/{id} and verifies the acceptance contract
// for a sampled high-latency request: the payload is ValidateTrace-clean
// Chrome trace JSON, its root args carry the matching trace ID, a
// cache-tier span is present, and every name in wantSpans appears.
func CheckTrace(ctx context.Context, client *http.Client, baseURL, traceID string, wantSpans []string) TraceCheck {
	tc := TraceCheck{TraceID: traceID}
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	if traceID == "" {
		tc.Err = "no trace ID sampled (no cache-miss request completed?)"
		return tc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/traces/"+traceID, nil)
	if err != nil {
		tc.Err = err.Error()
		return tc
	}
	resp, err := client.Do(req)
	if err != nil {
		tc.Err = err.Error()
		return tc
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		tc.Err = err.Error()
		return tc
	}
	if resp.StatusCode != http.StatusOK {
		tc.Err = fmt.Sprintf("GET /traces/%s: status %d: %.200s", traceID, resp.StatusCode, data)
		return tc
	}

	n, err := flight.ValidateTrace(data)
	tc.Events = n
	if err != nil {
		tc.Err = "trace validation: " + err.Error()
		return tc
	}

	var doc struct {
		TraceEvents []flight.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		tc.Err = err.Error()
		return tc
	}
	seen := map[string]bool{}
	gotID := ""
	cacheTier := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "B" {
			continue
		}
		seen[ev.Name] = true
		if len(ev.Name) > 6 && ev.Name[:6] == "cache-" {
			cacheTier = true
		}
		if id, ok := ev.Args["trace_id"].(string); ok && gotID == "" {
			gotID = id
		}
	}
	for name := range seen {
		tc.Spans = append(tc.Spans, name)
	}
	sort.Strings(tc.Spans)
	for _, want := range wantSpans {
		if !seen[want] {
			tc.Missing = append(tc.Missing, want)
		}
	}
	if !cacheTier {
		tc.Missing = append(tc.Missing, "cache-<tier>")
	}
	switch {
	case gotID == "":
		tc.Err = "trace carries no trace_id arg"
	case gotID != traceID:
		tc.Err = fmt.Sprintf("trace_id mismatch: trace says %q, requested %q", gotID, traceID)
	case len(tc.Missing) > 0:
		tc.Err = fmt.Sprintf("missing spans: %v", tc.Missing)
	default:
		tc.OK = true
	}
	return tc
}

// FetchHistory grabs the server's /metrics/history dump (window 0 = full
// retention), used post-run to archive the time series as a CI artifact
// and to read SLO burn states.
func FetchHistory(ctx context.Context, client *http.Client, baseURL string, window time.Duration) (*pipeline.HistoryDump, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	url := baseURL + "/metrics/history"
	if window > 0 {
		url += "?window=" + window.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 50<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics/history: status %d: %.200s", resp.StatusCode, data)
	}
	var d pipeline.HistoryDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("decode /metrics/history: %w", err)
	}
	return &d, nil
}

// SLOState summarizes one objective's alert state as read from the server.
type SLOState struct {
	Name    string  `json:"name"`
	State   string  `json:"state"`
	MaxBurn float64 `json:"max_burn"`
}

// FetchSLOStates reads the current SLO statuses from /metrics (the
// snapshot carries the burn-rate engine's latest evaluation).
func FetchSLOStates(ctx context.Context, client *http.Client, baseURL string) ([]SLOState, error) {
	m, err := FetchMetrics(ctx, client, baseURL)
	if err != nil {
		return nil, err
	}
	out := make([]SLOState, 0, len(m.SLOs))
	for _, s := range m.SLOs {
		out = append(out, SLOState{Name: s.Name, State: s.State, MaxBurn: s.MaxBurn()})
	}
	return out, nil
}

// WaitSLOState polls the server until every SLO reports one of the wanted
// states (e.g. just "ok") or the timeout lapses; it returns the final
// statuses either way, with an error on timeout. Load harnesses use it to
// assert burn alerts fire under overload and clear after recovery.
func WaitSLOState(ctx context.Context, client *http.Client, baseURL string, want map[string]bool, timeout time.Duration) ([]SLOState, error) {
	deadline := time.Now().Add(timeout)
	var last []SLOState
	var lastErr error
	for {
		states, err := FetchSLOStates(ctx, client, baseURL)
		lastErr = err
		if err == nil {
			last = states
			all := len(states) > 0
			for _, s := range states {
				if !want[s.State] {
					all = false
				}
			}
			if all {
				return states, nil
			}
		}
		if time.Now().After(deadline) {
			if lastErr != nil {
				return last, fmt.Errorf("loadgen: SLO state wait: %w", lastErr)
			}
			return last, fmt.Errorf("loadgen: SLO states did not reach %v within %v (last: %+v)", keys(want), timeout, last)
		}
		select {
		case <-ctx.Done():
			return last, ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FetchMetrics grabs the server's /metrics JSON snapshot, used post-run to
// gate on dropped traces and to report server-side queue behaviour.
func FetchMetrics(ctx context.Context, client *http.Client, baseURL string) (*pipeline.Metrics, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	var m pipeline.Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("decode /metrics: %w", err)
	}
	return &m, nil
}
