// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the gocured corpus. Each experiment returns a Table
// with the measured values next to the paper's published numbers; the
// bench harness (bench_test.go) and cmd/ccbench drive them.
//
// All compilation and execution is dispatched through a pipeline.Runner:
// rows of a table build and run concurrently (bounded by Config.Jobs
// workers) and repeated builds of the same (source, options) pair — common
// across experiments, e.g. bind appears in E1, E3, E7 and E8 — are served
// from the Runner's content-addressed cache.
//
// Absolute numbers differ from the paper — our substrate is an interpreter
// over simulated memory, not gcc on a 2003 machine — but the shapes are
// preserved: CCured's type-directed checks cost a fraction of the
// shadow-memory tools, RTTI rescues the ijpeg-style downcast-heavy code
// from WILD, and split types are cheap except for pointer-dense code.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"gocured"
	"gocured/internal/corpus"
	"gocured/internal/pipeline"
)

// Config tunes experiment cost.
type Config struct {
	// Scale overrides the corpus SCALE constant (0 keeps the source value).
	Scale int
	// Jobs bounds concurrent curing/execution jobs (0 = runtime.NumCPU()).
	// It is ignored when Runner is set.
	Jobs int
	// Runner, if non-nil, dispatches all work; otherwise each experiment
	// creates its own. All sets it so the nine experiments share one
	// compile cache.
	Runner *pipeline.Runner
}

// runner returns the configured Runner or builds one from Jobs.
func (c Config) runner() *pipeline.Runner {
	if c.Runner != nil {
		return c.Runner
	}
	return pipeline.NewRunner(pipeline.RunnerOptions{Workers: c.Jobs})
}

// Table is one reproduced table/figure.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(&b, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// All runs every experiment over one shared Runner (and therefore one
// shared compile cache).
func All(cfg Config) []*Table {
	cfg.Runner = cfg.runner()
	return []*Table{
		CastClassification(cfg),
		Fig8Apache(cfg),
		Fig9System(cfg),
		IjpegRTTI(cfg),
		MicroSuite(cfg),
		SplitOverhead(cfg),
		BindCasts(cfg),
		SplitStats(cfg),
		Exploits(cfg),
		StoreWarmth(cfg),
	}
}

// ---- shared plumbing ----

// built is one cured corpus program, held by its pipeline artifacts.
type built struct {
	r     *pipeline.Runner
	prog  *corpus.Program
	src   string
	opts  gocured.Options
	stats gocured.Stats
	lines int
}

func mustBuild(r *pipeline.Runner, p *corpus.Program, opts gocured.Options, scale int) *built {
	src := p.Source
	if scale > 0 {
		src = corpus.WithScale(p, scale)
	}
	res := r.Compile(context.Background(), p.Name+".c", src, opts)
	if res.Err != nil {
		panic(fmt.Sprintf("experiments: build %s: %v", p.Name, res.Err))
	}
	return &built{r: r, prog: p, src: src, opts: opts, stats: res.Stats, lines: res.Stats.Lines}
}

func defaultOpts(p *corpus.Program) gocured.Options {
	return gocured.Options{TrustBadCasts: p.TrustBadCasts}
}

// run executes the program once in a mode through the Runner.
func (b *built) run(mode gocured.Mode, ro gocured.RunOptions) (*gocured.Result, error) {
	res := b.r.Do(context.Background(), pipeline.Job{
		Name:       b.prog.Name + ".c",
		Source:     b.src,
		Options:    b.opts,
		Run:        true,
		Mode:       mode,
		RunOptions: ro,
	})
	if res.Err != nil {
		return nil, res.Err
	}
	return res.Run, nil
}

// cost executes the program once under a mode and returns the
// deterministic simulated-cycle count. Experiment tables use cost ratios:
// reproducible run to run, unlike wall time over an interpreter, while
// wall-clock behaviour is still exercised by bench_test.go.
func (b *built) cost(mode gocured.Mode) uint64 {
	out, err := b.run(mode, gocured.RunOptions{})
	if err != nil {
		panic(fmt.Sprintf("experiments: run %s/%s: %v", b.prog.Name, mode, err))
	}
	if out.Trapped {
		panic(fmt.Sprintf("experiments: %s trapped under %s: %s", b.prog.Name, mode, out.TrapMessage))
	}
	return out.SimCycles
}

// eachRow computes n table rows concurrently. Row goroutines block in the
// Runner's worker pool, so parallelism stays bounded by Config.Jobs while
// row order is preserved.
func eachRow(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func pctStr(f float64) string { return fmt.Sprintf("%.0f", f) }

// kindCols renders the sf/sq/w/rt column of Figures 8 and 9.
func kindCols(s gocured.Stats) string {
	return fmt.Sprintf("%s/%s/%s/%s",
		pctStr(s.PctSafe), pctStr(s.PctSeq), pctStr(s.PctWild), pctStr(s.PctRtti))
}
