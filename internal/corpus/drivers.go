package corpus

// Linux-driver-like workloads (Figure 9: pcnet32, sbull). The kernel
// environment is simulated: DMA rings are arrays of descriptor structs,
// "hardware" is the deterministic sim_recv/sim_send pair, and the block
// device is a heap-allocated ramdisk.

var _ = register(&Program{
	Name:     "pcnet32",
	Category: "driver",
	Desc:     "PCI Ethernet driver-like: descriptor rings, throughput and ping latency",
	Source: Prelude + `
enum { SCALE = 2, RING = 16, MTU = 256, PACKETS = 300 };

struct rx_desc {
    char *buf;
    int len;
    int status;   /* 0 = owned by hw, 1 = done */
};

struct tx_desc {
    char *buf;
    int len;
    int status;
};

struct pcnet_priv {
    struct rx_desc rx_ring[RING];
    struct tx_desc tx_ring[RING];
    int rx_head;
    int tx_head;
    int rx_packets;
    int tx_packets;
    int rx_bytes;
    int tx_bytes;
    int errors;
};

struct pcnet_priv *priv;

void pcnet_init(void) {
    int i;
    priv = (struct pcnet_priv *)malloc(sizeof(struct pcnet_priv));
    memset(priv, 0, sizeof(struct pcnet_priv));
    for (i = 0; i < RING; i++) {
        priv->rx_ring[i].buf = (char *)malloc(MTU);
        priv->rx_ring[i].status = 0;
        priv->tx_ring[i].buf = (char *)malloc(MTU);
        priv->tx_ring[i].status = 1;
    }
    priv->rx_head = 0;
    priv->tx_head = 0;
}

/* "hardware" fills an rx descriptor */
void hw_rx(int len) {
    struct rx_desc *d = &priv->rx_ring[priv->rx_head % RING];
    if (d->status != 0) { priv->errors++; return; }
    if (len > MTU) len = MTU;
    sim_recv(d->buf, len);
    d->len = len;
    d->status = 1;
}

int checksum16(char *p, int n) {
    int sum = 0, i;
    for (i = 0; i + 1 < n; i += 2) {
        sum += (p[i] & 255) << 8 | (p[i + 1] & 255);
        if (sum > 0xFFFF) sum = (sum & 0xFFFF) + 1;
    }
    return sum & 0xFFFF;
}

/* interrupt handler: harvest rx ring, refill */
int pcnet_interrupt(void) {
    int handled = 0;
    while (priv->rx_ring[priv->rx_head % RING].status == 1) {
        struct rx_desc *d = &priv->rx_ring[priv->rx_head % RING];
        priv->rx_packets++;
        priv->rx_bytes += d->len;
        handled += checksum16(d->buf, d->len);
        d->status = 0;
        priv->rx_head++;
    }
    return handled & 0xFFFF;
}

int pcnet_xmit(char *data, int len) {
    struct tx_desc *d = &priv->tx_ring[priv->tx_head % RING];
    if (d->status != 1) { priv->errors++; return -1; }
    if (len > MTU) len = MTU;
    memcpy(d->buf, data, len);
    d->len = len;
    d->status = 0;
    sim_send(d->buf, len);
    d->status = 1;       /* hardware completion */
    priv->tx_head++;
    priv->tx_packets++;
    priv->tx_bytes += len;
    return len;
}

/* ping: round-trip a packet through rx and tx */
int ping_once(int seq) {
    char pkt[MTU];
    int i, n, csum;
    hw_rx(64 + (seq % 128));
    csum = pcnet_interrupt();
    n = 64;
    for (i = 0; i < n; i++) pkt[i] = (char)(seq + i);
    pkt[0] = (char)(csum & 255);
    return pcnet_xmit(pkt, n);
}

int main(void) {
    int iter, i, total = 0;
    pcnet_init();
    for (iter = 0; iter < SCALE; iter++) {
        /* throughput: bursts of receives then transmits */
        for (i = 0; i < PACKETS; i++) {
            hw_rx(MTU - (i % 64));
            if (i % 4 == 3) total += pcnet_interrupt();
        }
        total += pcnet_interrupt();
        for (i = 0; i < PACKETS; i++) {
            char frame[MTU];
            int k;
            for (k = 0; k < 128; k++) frame[k] = (char)(i * 7 + k);
            pcnet_xmit(frame, 128);
        }
        /* latency: pings */
        for (i = 0; i < 64; i++) total += ping_once(i);
        total = total % 1000000007;
    }
    printf("pcnet32 rx=%d tx=%d err=%d total=%d\n",
           priv->rx_packets, priv->tx_packets, priv->errors, total);
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "sbull",
	Category: "driver",
	Desc:     "ramdisk block driver-like: request queue, block reads/writes, seeks",
	Source: Prelude + `
enum { SCALE = 2, NSECT = 128, SECT = 256, QDEPTH = 8, OPS = 400 };

struct request {
    int sector;
    int nsect;
    int write;
    char *buffer;
    struct request *next;
};

struct sbull_dev {
    char *data;           /* NSECT * SECT ramdisk */
    struct request *queue;
    int served;
    int seeks;
    int cur_sector;
};

struct sbull_dev dev;

void sbull_init(void) {
    dev.data = (char *)malloc(NSECT * SECT);
    memset(dev.data, 0, NSECT * SECT);
    dev.queue = 0;
    dev.served = 0;
    dev.seeks = 0;
    dev.cur_sector = 0;
}

void sbull_enqueue(int sector, int nsect, int write, char *buffer) {
    struct request *rq = (struct request *)malloc(sizeof(struct request));
    struct request **pp = &dev.queue;
    rq->sector = sector;
    rq->nsect = nsect;
    rq->write = write;
    rq->buffer = buffer;
    rq->next = 0;
    /* elevator: keep the queue sorted by sector */
    while (*pp && (*pp)->sector <= sector) pp = &(*pp)->next;
    rq->next = *pp;
    *pp = rq;
}

void sbull_transfer(struct request *rq) {
    int off = rq->sector * SECT;
    int n = rq->nsect * SECT;
    if (rq->sector + rq->nsect > NSECT) return;  /* out of range: ignored */
    if (rq->sector != dev.cur_sector) dev.seeks++;
    if (rq->write) {
        memcpy(dev.data + off, rq->buffer, n);
    } else {
        memcpy(rq->buffer, dev.data + off, n);
    }
    dev.cur_sector = rq->sector + rq->nsect;
    dev.served++;
}

void sbull_run_queue(void) {
    while (dev.queue) {
        struct request *rq = dev.queue;
        dev.queue = rq->next;
        sbull_transfer(rq);
        free(rq);
    }
}

int main(void) {
    /* the I/O buffer lives on the heap: its address is stored into queued
       requests (the paper's ports moved such locals to the heap too) */
    char *buf = (char *)malloc(2 * SECT);
    int iter, i, total = 0;
    unsigned int state = 12345;
    sbull_init();
    for (iter = 0; iter < SCALE; iter++) {
        /* sequential writes */
        for (i = 0; i < OPS; i++) {
            int k;
            int sector = i % (NSECT - 2);
            for (k = 0; k < SECT; k++) buf[k] = (char)(i + k);
            sbull_enqueue(sector, 1, 1, buf);
            if (i % QDEPTH == QDEPTH - 1) sbull_run_queue();
        }
        sbull_run_queue();
        /* random seeks and reads */
        for (i = 0; i < OPS; i++) {
            int sector;
            state = state * 1103515245 + 12345;
            sector = (int)((state >> 16) % (NSECT - 2));
            sbull_enqueue(sector, 2, 0, buf);
            if (i % 3 == 0) sbull_run_queue();
        }
        sbull_run_queue();
        for (i = 0; i < SECT; i++) total += buf[i] & 255;
        total = total % 1000000007;
    }
    printf("sbull served=%d seeks=%d total=%d\n", dev.served, dev.seeks, total);
    return 0;
}
`,
})
