package corpus

// sendmail-like mail transfer agent (Figure 9). The pointer behaviour that
// matters: header parsing into envelope structures, a rule-based address
// rewriting engine (token lists), a delivery queue, and macro expansion
// into fixed buffers. The paper's port also moved stack buffers to the
// heap and replaced unions with structs; this corpus program is written in
// that post-port style.

var _ = register(&Program{
	Name:     "sendmail",
	Category: "daemon",
	Desc:     "sendmail-like: header parsing, address rewriting, delivery queue",
	Source: Prelude + `
enum { SCALE = 2, MAXTOK = 16, MAXHDRS = 12, NMSG = 12 };

/* ---- envelope and headers ---- */

struct header {
    char *field;
    char *value;
    struct header *next;
};

struct envelope {
    char *from;
    char *to;
    struct header *headers;
    int nheaders;
    int size;
    int id;
};

struct envelope *env_new(int id) {
    struct envelope *e = (struct envelope *)malloc(sizeof(struct envelope));
    e->from = 0;
    e->to = 0;
    e->headers = 0;
    e->nheaders = 0;
    e->size = 0;
    e->id = id;
    return e;
}

void env_add_header(struct envelope *e, char *field, char *value) {
    struct header *h = (struct header *)malloc(sizeof(struct header));
    h->field = strdup(field);
    h->value = strdup(value);
    h->next = e->headers;
    e->headers = h;
    e->nheaders++;
}

char *env_get_header(struct envelope *e, char *field) {
    struct header *h = e->headers;
    while (h) {
        if (strcmp(h->field, field) == 0) return h->value;
        h = h->next;
    }
    return 0;
}

void env_free(struct envelope *e) {
    struct header *h = e->headers;
    while (h) {
        struct header *next = h->next;
        free(h->field);
        free(h->value);
        free(h);
        h = next;
    }
    if (e->from) free(e->from);
    if (e->to) free(e->to);
    free(e);
}

/* ---- address tokenizer and rewriting rules (S0-style) ---- */

struct tokens {
    char *tok[MAXTOK];
    int n;
};

void tokenize(char *addr, struct tokens *t, char *storage) {
    int i = 0, s = 0;
    t->n = 0;
    while (addr[i] && t->n < MAXTOK) {
        char c = addr[i];
        if (c == '@' || c == '.' || c == '!' || c == '%' || c == '<' || c == '>') {
            storage[s] = c;
            storage[s + 1] = 0;
            t->tok[t->n] = storage + s;
            t->n++;
            s += 2;
            i++;
        } else {
            int start = s;
            while (addr[i] && addr[i] != '@' && addr[i] != '.' && addr[i] != '!'
                   && addr[i] != '%' && addr[i] != '<' && addr[i] != '>') {
                storage[s] = addr[i];
                s++;
                i++;
            }
            storage[s] = 0;
            s++;
            t->tok[t->n] = storage + start;
            t->n++;
        }
    }
}

/* a rewriting rule: if the token list matches lhs, emit rhs */
struct rwrule {
    char *lhs;  /* e.g. "$+!$+" : uucp bang path   */
    char *rhs;  /* e.g. "$2@$1" : rewrite to internet form */
};

struct rwrule ruleset[3] = {
    { "$+!$+",   "$2@$1" },
    { "$+%$+",   "$1@$2" },
    { "<$+@$+>", "$1@$2" },
};

/* match tokens against a pattern; bind $+ groups (single token each) */
int rule_match(struct tokens *t, char *pat, char **bind, int *nbind) {
    int pi = 0, ti = 0;
    *nbind = 0;
    while (pat[pi]) {
        if (pat[pi] == '$' && pat[pi + 1] == '+') {
            if (ti >= t->n) return 0;
            bind[*nbind] = t->tok[ti];
            (*nbind)++;
            ti++;
            pi += 2;
        } else {
            char lit[2];
            lit[0] = pat[pi];
            lit[1] = 0;
            if (ti >= t->n || strcmp(t->tok[ti], lit) != 0) return 0;
            ti++;
            pi++;
        }
    }
    return ti == t->n;
}

void rule_apply(char *rhs, char **bind, int nbind, char *out) {
    int i = 0, o = 0;
    while (rhs[i]) {
        if (rhs[i] == '$' && rhs[i + 1] >= '1' && rhs[i + 1] <= '9') {
            int g = rhs[i + 1] - '1';
            if (g < nbind) {
                char *s = bind[g];
                while (*s) { out[o] = *s; o++; s++; }
            }
            i += 2;
        } else {
            out[o] = rhs[i];
            o++;
            i++;
        }
    }
    out[o] = 0;
}

/* canonify an address through the ruleset until no rule fires */
void rewrite_addr(char *addr, char *out) {
    char cur[96];
    char storage[192];
    char next[96];
    struct tokens t;
    char *bind[9];
    int nbind, i, fired, passes = 0;
    strncpy(cur, addr, 95);
    cur[95] = 0;
    for (;;) {
        fired = 0;
        tokenize(cur, &t, storage);
        for (i = 0; i < 3; i++) {
            if (rule_match(&t, ruleset[i].lhs, bind, &nbind)) {
                rule_apply(ruleset[i].rhs, bind, nbind, next);
                strcpy(cur, next);
                fired = 1;
                break;
            }
        }
        passes++;
        if (!fired || passes > 4) break;
    }
    strcpy(out, cur);
}

/* ---- the queue ---- */

struct qentry {
    struct envelope *env;
    int tries;
    struct qentry *next;
};

struct qentry *queue;
int delivered;
int queued;

void queue_put(struct envelope *e) {
    struct qentry *q = (struct qentry *)malloc(sizeof(struct qentry));
    q->env = e;
    q->tries = 0;
    q->next = queue;
    queue = q;
    queued++;
}

int deliver(struct envelope *e) {
    char line[160];
    int n;
    n = sprintf(line, "From: %s\nTo: %s\nSubject: %s\n\n",
                e->from, e->to, env_get_header(e, "Subject"));
    sim_send(line, (unsigned int)n);
    delivered++;
    return n;
}

int run_queue(void) {
    int bytes = 0;
    while (queue) {
        struct qentry *q = queue;
        queue = q->next;
        q->tries++;
        bytes += deliver(q->env);
        env_free(q->env);
        free(q);
    }
    return bytes;
}

/* ---- inbound message parsing ---- */

char *samples[4] = {
    "research!alice",
    "bob%lab.example.org",
    "<carol@example.com>",
    "dave!host!eve",
};

int accept_message(int id) {
    char rewritten[96];
    char subj[48];
    struct envelope *e = env_new(id);
    char *raw = samples[id % 4];
    rewrite_addr(raw, rewritten);
    e->from = strdup("daemon@bench.example.org");
    e->to = strdup(rewritten);
    sprintf(subj, "queue run %d", id);
    env_add_header(e, "Subject", subj);
    env_add_header(e, "Received", "from simulator by gocured");
    env_add_header(e, "Message-Id", "<gen@bench>");
    e->size = strlen(raw) + 64;
    queue_put(e);
    return e->size;
}

int main(void) {
    int iter, i, total = 0;
    for (iter = 0; iter < SCALE; iter++) {
        for (i = 0; i < NMSG; i++) total += accept_message(iter * NMSG + i);
        total += run_queue();
        total = total % 1000000007;
    }
    printf("sendmail queued=%d delivered=%d total=%d\n", queued, delivered, total);
    return 0;
}
`,
})
