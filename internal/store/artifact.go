package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"

	"gocured/internal/infer"
)

// Artifacts addresses compile artifacts inside a chunk store. Every key
// folds in the gocured version and the Go toolchain version, so upgrading
// either invalidates the whole store wholesale (old chunks simply stop
// being addressed; they are never misread).
type Artifacts struct {
	store     *Store
	version   string
	goVersion string
}

// NewArtifacts wraps a chunk store with the key schema for this compiler
// revision. version is gocured.Version; goVersion is runtime.Version().
func NewArtifacts(s *Store, version, goVersion string) *Artifacts {
	return &Artifacts{store: s, version: version, goVersion: goVersion}
}

// Store returns the underlying chunk store.
func (a *Artifacts) Store() *Store { return a.store }

// ForOptions returns the per-function summary source for one inference
// configuration; opts may be any options value with a stable "%+v"
// rendering (infer.Options, gocured.Options). Chunk keys are
//
//	SHA-256(version, Go version, options, function name,
//	        body fingerprint, declaration fingerprint)
//
// so two configurations never share chunks and a source never needs
// invalidation logic beyond "the key changed".
func (a *Artifacts) ForOptions(opts any) infer.SummarySource {
	return &summarySource{a: a, opts: fmt.Sprintf("%+v", opts)}
}

type summarySource struct {
	a    *Artifacts
	opts string
}

func (s *summarySource) key(fn string, body, decls [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	for _, part := range []string{"gocured-func-summary", s.a.version, s.a.goVersion, s.opts, fn} {
		fmt.Fprintf(h, "%d:%s", len(part), part)
	}
	h.Write(body[:])
	h.Write(decls[:])
	return [sha256.Size]byte(h.Sum(nil))
}

func (s *summarySource) Load(fn string, body, decls [sha256.Size]byte) (*infer.FuncSummary, bool) {
	key := s.key(fn, body, decls)
	data, ok := s.a.store.Get(key)
	if !ok {
		return nil, false
	}
	var sum infer.FuncSummary
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&sum); err != nil {
		// The payload hash verified but the encoding is not one we can
		// read (e.g. a schema skew the version key failed to capture).
		// Useless chunk: drop it and recompile.
		s.a.store.drop(s.a.store.path(key), int64(headerSize+len(data)))
		return nil, false
	}
	return &sum, true
}

func (s *summarySource) Save(sum *infer.FuncSummary, fn string, body, decls [sha256.Size]byte) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sum); err != nil {
		return
	}
	// Best-effort: a full disk or unwritable store degrades to recompiling.
	_ = s.a.store.Put(s.key(fn, body, decls), buf.Bytes())
}
