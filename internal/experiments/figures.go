package experiments

import (
	"fmt"

	"gocured/internal/corpus"
	"gocured/internal/infer"
	"gocured/internal/interp"
)

// CastClassification reproduces §3's cast statistics: "around 63% of casts
// are between identical types. ... Of these bad casts, about 93% are safe
// upcasts and 6% are downcasts. Less than 1% of all casts fall outside of
// these categories."
func CastClassification(cfg Config) *Table {
	t := &Table{
		ID:    "E1",
		Title: "Cast classification over the corpus (§3)",
		Note: "paper: 63% of casts identical; of the remainder 93% upcasts,\n" +
			"6% downcasts, <1% genuinely bad",
		Header: []string{"program", "casts", "ident%", "up%", "down%", "alloc%", "tile%", "bad%", "trusted%"},
	}
	var tot infer.Stats
	for _, p := range corpus.All() {
		b := mustBuild(p, defaultOpts(p), cfg.Scale)
		s := b.unit.Stats()
		tot.Casts += s.Casts
		tot.Identity += s.Identity
		tot.Upcasts += s.Upcasts
		tot.Downcasts += s.Downcasts
		tot.SeqCasts += s.SeqCasts
		tot.Bad += s.Bad
		tot.Trusted += s.Trusted
		tot.Alloc += s.Alloc
		t.Rows = append(t.Rows, castRow(p.Name, s))
	}
	t.Rows = append(t.Rows, castRow("TOTAL", tot))
	return t
}

func castRow(name string, s infer.Stats) []string {
	pc := func(n int) string {
		if s.Casts == 0 {
			return "0"
		}
		return fmt.Sprintf("%.1f", 100*float64(n)/float64(s.Casts))
	}
	return []string{name, fmt.Sprintf("%d", s.Casts), pc(s.Identity), pc(s.Upcasts),
		pc(s.Downcasts), pc(s.Alloc), pc(s.SeqCasts), pc(s.Bad), pc(s.Trusted)}
}

// paperFig8 holds the published Apache-module ratios (Figure 8).
var paperFig8 = map[string]string{
	"apache-asis": "0.96", "apache-expires": "1.00", "apache-gzip": "0.94",
	"apache-headers": "1.00", "apache-info": "1.00", "apache-layout": "1.01",
	"apache-random": "0.94", "apache-urlcount": "1.02", "apache-usertrack": "1.00",
	"apache-webstone": "1.04",
}

// Fig8Apache reproduces Figure 8: Apache module performance.
func Fig8Apache(cfg Config) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Figure 8: Apache module performance",
		Note:   "sf/sq/w/rt: % of static pointers inferred SAFE/SEQ/WILD/RTTI",
		Header: []string{"module", "lines", "sf/sq/w/rt", "cured-ratio", "paper-ratio"},
	}
	for _, p := range corpus.ByCategory("apache") {
		b := mustBuild(p, defaultOpts(p), cfg.Scale)
		s := b.unit.Stats()
		raw := b.cost(interp.PolicyNone)
		cured := b.cost(interp.PolicyCured)
		t.Rows = append(t.Rows, []string{
			p.Name, fmt.Sprintf("%d", b.lines), kindCols(s),
			fmt.Sprintf("%.2f", ratio(cured, raw)), paperFig8[p.Name],
		})
	}
	return t
}

// paperFig9 holds the published system-software numbers (Figure 9):
// columns are kinds, CCured ratio, Valgrind ratio.
var paperFig9 = map[string][3]string{
	"pcnet32":      {"92/8/0/0", "0.99", "-"},
	"sbull":        {"85/15/0/0", "1.00", "-"},
	"ftpd":         {"79/12/9/0", "1.01", "9.42"},
	"openssl-cast": {"67/27/0/6", "1.87", "48.7"},
	"openssl-bn":   {"67/27/0/6", "1.01", "72.0"},
	"ssh-client":   {"70/28/0/3", "1.22", "22.1"},
	"ssh-server":   {"70/28/0/3", "1.15", "-"},
	"sendmail":     {"65/34/0/1", "1.46", "122"},
	"bind":         {"79/21/0/0", "1.11-1.81", "81-129"},
}

// Fig9System reproduces Figure 9: system software performance.
func Fig9System(cfg Config) *Table {
	t := &Table{
		ID:    "E3",
		Title: "Figure 9: system software performance",
		Note: "ratios are slowdowns versus the uninstrumented run; paper columns\n" +
			"give the published kinds and CCured/Valgrind ratios",
		Header: []string{"name", "lines", "sf/sq/w/rt", "cured", "valgrind",
			"paper-kinds", "paper-cured", "paper-valgrind"},
	}
	names := []string{"pcnet32", "sbull", "ftpd", "openssl-cast", "openssl-bn",
		"ssh-client", "ssh-server", "sendmail", "bind"}
	for _, name := range names {
		p := corpus.ByName(name)
		b := mustBuild(p, defaultOpts(p), cfg.Scale)
		s := b.unit.Stats()
		raw := b.cost(interp.PolicyNone)
		cured := b.cost(interp.PolicyCured)
		valgrind := b.cost(interp.PolicyValgrind)
		pub := paperFig9[name]
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", b.lines), kindCols(s),
			fmt.Sprintf("%.2f", ratio(cured, raw)),
			fmt.Sprintf("%.1f", ratio(valgrind, raw)),
			pub[0], pub[1], pub[2],
		})
	}
	return t
}

// IjpegRTTI reproduces the ijpeg ablation of §5: with the original CCured
// the OO style made ~60% of pointers WILD (115% slowdown); RTTI removed all
// bad casts with ~1% RTTI pointers (45% slowdown).
func IjpegRTTI(cfg Config) *Table {
	t := &Table{
		ID:    "E4",
		Title: "ijpeg with and without RTTI (§5)",
		Note: "paper: without RTTI 60% WILD, 2.15x; with RTTI 0% WILD, ~1% RTTI,\n" +
			"1.45x, zero bad casts",
		Header: []string{"config", "wild%", "rtti%", "bad-casts", "cured-ratio"},
	}
	p := corpus.ByName("ijpeg")
	for _, mode := range []struct {
		name string
		opts infer.Options
	}{
		{"original (no RTTI)", infer.Options{NoRTTI: true}},
		{"with RTTI", infer.Options{}},
	} {
		b := mustBuild(p, mode.opts, cfg.Scale)
		s := b.unit.Stats()
		raw := b.cost(interp.PolicyNone)
		cured := b.cost(interp.PolicyCured)
		t.Rows = append(t.Rows, []string{
			mode.name,
			fmt.Sprintf("%.1f", s.PctWild()),
			fmt.Sprintf("%.1f", s.PctRtti()),
			fmt.Sprintf("%d", s.Bad),
			fmt.Sprintf("%.2f", ratio(cured, raw)),
		})
	}
	return t
}

// MicroSuite reproduces the Spec95/Olden/Ptrdist comparison: CCured's
// checks cost 7-56% while Purify costs 25-100x and Valgrind 9-130x.
func MicroSuite(cfg Config) *Table {
	t := &Table{
		ID:    "E5",
		Title: "Spec95/Olden/Ptrdist-like suite: CCured vs Purify vs Valgrind",
		Note: "paper: CCured 1.07-1.56x; Purify 25-100x; Valgrind 9-130x\n" +
			"(shape to check: cured << purify < valgrind)",
		Header: []string{"program", "cured", "purify", "valgrind"},
	}
	for _, cat := range []string{"spec", "olden", "ptrdist"} {
		for _, p := range corpus.ByCategory(cat) {
			b := mustBuild(p, defaultOpts(p), cfg.Scale)
			raw := b.cost(interp.PolicyNone)
			cured := b.cost(interp.PolicyCured)
			purify := b.cost(interp.PolicyPurify)
			valgrind := b.cost(interp.PolicyValgrind)
			t.Rows = append(t.Rows, []string{
				p.Name,
				fmt.Sprintf("%.2f", ratio(cured, raw)),
				fmt.Sprintf("%.1f", ratio(purify, raw)),
				fmt.Sprintf("%.1f", ratio(valgrind, raw)),
			})
		}
	}
	return t
}

// SplitOverhead reproduces the all-split ablation: "In most cases, the
// overhead was negligible (less than 3% slowdown); ... em3d was slowed down
// by 58%, and anagram by 7%."
func SplitOverhead(cfg Config) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Compatible (split) representation overhead, all types split (§5)",
		Note: "overhead of the all-split cured run versus the normally cured run;\n" +
			"paper: mostly <3%, em3d +58%, anagram +7%",
		Header: []string{"program", "cured", "all-split", "overhead%"},
	}
	names := []string{"olden-treeadd", "olden-bisort", "olden-em3d", "olden-power",
		"ptrdist-anagram", "ptrdist-ks", "ptrdist-ft", "ijpeg"}
	for _, name := range names {
		p := corpus.ByName(name)
		normal := mustBuild(p, defaultOpts(p), cfg.Scale)
		split := mustBuild(p, infer.Options{TrustBadCasts: p.TrustBadCasts, SplitAll: true}, cfg.Scale)
		curedN := normal.cost(interp.PolicyCured)
		curedS := split.cost(interp.PolicyCured)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1fM cycles", float64(curedN)/1e6),
			fmt.Sprintf("%.1fM cycles", float64(curedS)/1e6),
			fmt.Sprintf("%+.0f", 100*(ratio(curedS, curedN)-1)),
		})
	}
	return t
}

// BindCasts reproduces the bind cast statistics of §5: 530 bad casts
// initially; enabling RTTI proves 28% of them (150) to be checked
// downcasts; the remaining 380 are trusted after review, leaving no WILD.
func BindCasts(cfg Config) *Table {
	t := &Table{
		ID:    "E7",
		Title: "bind: bad casts, RTTI recovery, trusted casts (§5)",
		Note: "paper: 82000 casts, 26500 upcasts; 530 bad without RTTI; RTTI\n" +
			"recovers 150 (28%) as downcasts; remaining 380 trusted; WILD -> 0",
		Header: []string{"config", "casts", "upcasts", "downcasts", "bad", "trusted", "wild%"},
	}
	p := corpus.ByName("bind")
	for _, mode := range []struct {
		name string
		opts infer.Options
	}{
		{"no RTTI, no trust", infer.Options{NoRTTI: true}},
		{"RTTI, no trust", infer.Options{}},
		{"RTTI + trusted casts", infer.Options{TrustBadCasts: true}},
	} {
		b := mustBuild(p, mode.opts, cfg.Scale)
		s := b.unit.Stats()
		t.Rows = append(t.Rows, []string{
			mode.name,
			fmt.Sprintf("%d", s.Casts), fmt.Sprintf("%d", s.Upcasts),
			fmt.Sprintf("%d", s.Downcasts), fmt.Sprintf("%d", s.Bad),
			fmt.Sprintf("%d", s.Trusted), fmt.Sprintf("%.0f", s.PctWild()),
		})
	}
	return t
}

// SplitStats reproduces the split-inference statistics of §5: bind needed
// 6% of pointers split with 31% of those needing a metadata pointer;
// OpenSSH needed <1%.
func SplitStats(cfg Config) *Table {
	t := &Table{
		ID:    "E8",
		Title: "Split inference statistics (§4.2/§5)",
		Note: "paper: bind 6% split, 31% of pointers need metadata pointers;\n" +
			"OpenSSH <1%; ssh-against-uncured-OpenSSL 3% split / 5% metadata",
		Header: []string{"program", "pointers", "split%", "meta%"},
	}
	for _, name := range []string{"bind", "ssh-client", "ssh-server", "sendmail"} {
		p := corpus.ByName(name)
		b := mustBuild(p, defaultOpts(p), cfg.Scale)
		st := b.unit.Res.Split.Stats
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%d", st.Ptrs),
			fmt.Sprintf("%.1f", st.PctSplit()),
			fmt.Sprintf("%.1f", st.PctMeta()),
		})
	}
	return t
}

// Exploits reproduces the security claims: the ftpd replydirname overflow
// is exploitable raw and trapped cured; benign sessions are unaffected.
func Exploits(cfg Config) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Exploit prevention: ftpd replydirname overflow (§5)",
		Note:   "paper: \"this version of ftpd has a known vulnerability ... we\nverified that CCured prevents this error\"",
		Header: []string{"scenario", "raw", "cured"},
	}
	p := corpus.ByName("ftpd")
	b := mustBuild(p, defaultOpts(p), 1)
	run := func(policy interp.Policy, stdin string) string {
		cfg := interp.Config{Stdin: []byte(stdin)}
		var out *interp.Outcome
		var err error
		if policy == interp.PolicyCured {
			out, err = b.unit.RunCured(cfg)
		} else {
			out, err = b.unit.RunRaw(policy, cfg)
		}
		if err != nil {
			return "error: " + err.Error()
		}
		if out.Trap != nil {
			return "TRAPPED (" + out.Trap.Kind + ")"
		}
		return fmt.Sprintf("ran to completion (exit %d)", out.ExitCode)
	}
	t.Rows = append(t.Rows, []string{
		"benign session",
		run(interp.PolicyNone, corpus.FtpdBenignInput),
		run(interp.PolicyCured, corpus.FtpdBenignInput),
	})
	t.Rows = append(t.Rows, []string{
		"exploit session (CWD overflow)",
		run(interp.PolicyNone, corpus.FtpdExploitInput),
		run(interp.PolicyCured, corpus.FtpdExploitInput),
	})
	return t
}
