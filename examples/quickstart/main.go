// Quickstart: compile a small C program, inspect the inferred pointer
// kinds, and watch CCured's checks catch a buffer overflow that the raw
// execution silently tolerates.
package main

import (
	"fmt"
	"log"

	"gocured"
)

const src = `
extern int printf(char *fmt, ...);

int sum_first(int *arr, int n) {
    int i, total = 0;
    for (i = 0; i <= n; i++) {   /* off-by-one bug */
        total += arr[i];
    }
    return total;
}

int main(void) {
    int data[8];
    int i;
    for (i = 0; i < 8; i++) data[i] = i + 1;
    printf("sum = %d\n", sum_first(data, 8));
    return 0;
}
`

func main() {
	prog, err := gocured.Compile("quickstart.c", src, gocured.Options{})
	if err != nil {
		log.Fatal(err)
	}

	s := prog.Stats()
	fmt.Printf("inference: %d pointers — SAFE %.0f%%, SEQ %.0f%%, WILD %.0f%%, RTTI %.0f%%\n",
		s.Pointers, s.PctSafe, s.PctSeq, s.PctWild, s.PctRtti)
	fmt.Printf("curing inserted %d run-time checks\n\n", s.ChecksInserted)

	raw, err := prog.Run(gocured.ModeRaw, gocured.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw run:   trapped=%v  output: %s", raw.Trapped, raw.Stdout)
	fmt.Println("           (the overflow read past the array and nobody noticed)")

	cured, err := prog.Run(gocured.ModeCured, gocured.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncured run: trapped=%v", cured.Trapped)
	if cured.Trapped {
		fmt.Printf("  (%s: %s)\n", cured.TrapKind, cured.TrapMessage)
	} else {
		fmt.Println()
	}
}
