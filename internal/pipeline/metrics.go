package pipeline

import (
	"expvar"
	"sort"
	"sync"
	"time"

	"gocured/internal/store"
	"gocured/internal/trace"
)

// BuildInfo identifies the running build: the gocured analysis revision,
// the Go toolchain, and whether the check optimizer is on by default. It
// feeds the gocured_build_info Prometheus gauge, the standard pattern for
// joining metrics against deployment metadata.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Optimizer string `json:"optimizer"` // "on" or "off"
}

// PhaseHist is one named phase-duration histogram in a snapshot.
type PhaseHist struct {
	Phase string    `json:"phase"`
	Hist  Histogram `json:"hist"`
}

// Metrics is a point-in-time snapshot of a Runner's counters. It marshals
// directly to JSON (ccserve's GET /metrics and the expvar export).
type Metrics struct {
	Build BuildInfo `json:"build"`

	// SnapshotUnixMS is the wall-clock time this snapshot was taken and
	// UptimeMS the process runner's age at that moment, so an external
	// scraper can compute rates from two snapshots without guessing at
	// scrape timing, and the time-series history can be replayed offline.
	SnapshotUnixMS int64 `json:"snapshot_unix_ms"`
	UptimeMS       int64 `json:"uptime_ms"`

	Workers      int   `json:"workers"`
	JobsInFlight int64 `json:"jobs_in_flight"`
	// QueueDepthNow is the number of jobs currently waiting for a worker
	// slot (queued by admission but not yet executing); QueueLimit is the
	// configured admission-queue bound (0 = unbounded, the batch default).
	QueueDepthNow int64 `json:"queue_depth_now"`
	QueueLimit    int   `json:"queue_limit"`

	JobsRun      uint64 `json:"jobs_run"`
	JobsFailed   uint64 `json:"jobs_failed"`
	JobsPanicked uint64 `json:"jobs_panicked"`
	JobsTimedOut uint64 `json:"jobs_timed_out"`

	// Admission-control decisions: Admitted counts jobs granted a worker
	// slot; Shed counts jobs rejected without queueing, split by reason
	// ("queue_full", "deadline"); Coalesced counts jobs served by joining
	// another identical in-flight job instead of queueing at all. The
	// per-client depths snapshot the fair queue (only clients with waiting
	// jobs appear).
	Admitted          uint64            `json:"admitted"`
	Shed              uint64            `json:"shed"`
	ShedByReason      map[string]uint64 `json:"shed_by_reason,omitempty"`
	Coalesced         uint64            `json:"coalesced"`
	ClientQueueDepths map[string]int    `json:"client_queue_depths,omitempty"`
	// ShedExemplar links the shed counter to the trace of the most
	// recently rejected request (OpenMetrics counter exemplar).
	ShedExemplar *Exemplar `json:"shed_exemplar,omitempty"`

	// TraceparentMalformed counts inbound W3C traceparent headers that
	// failed validation and were discarded (the request still ran, under a
	// freshly minted trace, per the trace-context spec).
	TraceparentMalformed uint64 `json:"traceparent_malformed"`

	RunsExecuted uint64            `json:"runs_executed"`
	Traps        uint64            `json:"traps"`
	TrapsByKind  map[string]uint64 `json:"traps_by_kind,omitempty"`

	Cache CacheStats `json:"cache"`

	// Store snapshots the persistent artifact store (nil when the Runner
	// has none); FuncsRecured/FuncsLoaded count per-function inference work
	// across non-cache-hit compiles — loaded functions were replayed from
	// stored summaries instead of re-collected.
	Store        *store.Stats `json:"store,omitempty"`
	FuncsRecured uint64       `json:"funcs_recured"`
	FuncsLoaded  uint64       `json:"funcs_loaded"`

	// Traces snapshots the request-trace buffer behind GET /traces/{id}
	// (nil when tracing is disabled).
	Traces *trace.BufferStats `json:"traces,omitempty"`

	// Latency distributions, all log-bucketed with per-bucket exemplars
	// linking to request traces. E2EWall is the full request latency as a
	// job experienced it (queue wait + compile/cache + run); QueueWait the
	// time spent waiting for a worker slot; QueueDepth the waiting-job
	// count observed at each enqueue (dimensionless, same bucket scale).
	E2EWall     Histogram `json:"e2e_wall"`
	QueueWait   Histogram `json:"queue_wait"`
	QueueDepth  Histogram `json:"queue_depth"`
	CompileWall Histogram `json:"compile_wall"`
	RunWall     Histogram `json:"run_wall"`
	// Phases are per-compile-phase duration histograms (parse, sema,
	// lower, infer, instrument, optimize, frontend-raw, store-read,
	// store-write), sorted by phase name.
	Phases []PhaseHist `json:"phases,omitempty"`

	// SLOs carries the burn-rate engine's current evaluation of each
	// configured objective. It is annotated onto the snapshot by the
	// History that owns SLO evaluation (ccserve does this in its handlers);
	// a bare Runner.Metrics() call leaves it nil.
	SLOs []SLOStatus `json:"slos,omitempty"`
}

// PhaseHistogram returns the named phase histogram (zero if absent).
func (m Metrics) PhaseHistogram(phase string) Histogram {
	for _, p := range m.Phases {
		if p.Phase == phase {
			return p.Hist
		}
	}
	return Histogram{}
}

// metrics is the Runner's internal accumulator. One mutex guards the
// counters; the histograms carry their own locks (they are also observed
// from queue admission, outside jobFinished). Updates are a few counter
// bumps per job, far off the interpreter's hot path, so contention is
// negligible next to compile/run work.
type metrics struct {
	start time.Time // process-lifetime anchor for uptime_ms

	mu           sync.Mutex
	jobsInFlight int64
	queueDepth   int64
	jobsRun      uint64
	jobsFailed   uint64
	jobsPanicked uint64
	jobsTimedOut uint64
	runsExecuted uint64
	traps        uint64
	trapsByKind  map[string]uint64
	funcsRecured uint64
	funcsLoaded  uint64
	admitted     uint64
	shed         uint64
	shedByReason map[string]uint64
	coalesced    uint64
	tpMalformed  uint64
	// lastShed is the exemplar attached to the shed counter in the
	// OpenMetrics exposition: the trace ID of the most recently shed job.
	lastShed Exemplar

	e2eWall     LogHist
	queueWait   LogHist
	queueDepthH LogHist
	compileWall LogHist
	runWall     LogHist

	phaseMu sync.Mutex
	phases  map[string]*LogHist
}

func newMetrics() *metrics {
	return &metrics{
		start:        time.Now(),
		trapsByKind:  make(map[string]uint64),
		shedByReason: make(map[string]uint64),
		phases:       make(map[string]*LogHist),
	}
}

// traceparentMalformed counts an inbound traceparent header that failed
// W3C validation and was discarded in favor of a fresh trace.
func (m *metrics) traceparentMalformed() {
	m.mu.Lock()
	m.tpMalformed++
	m.mu.Unlock()
}

// queueEnter registers a job entering the admission queue. The gauge is
// the only thing touched here: wait and depth observations happen at
// admission time, so shed and cancelled jobs never skew the histograms.
func (m *metrics) queueEnter() {
	m.mu.Lock()
	m.queueDepth++
	m.mu.Unlock()
}

// queueAdmitted records a successful admission: the wait and the queue
// depth the job observed at enqueue. waited reverses queueEnter for jobs
// that actually sat in the queue (the free-slot fast path never entered).
func (m *metrics) queueAdmitted(depth int64, wait time.Duration, traceID string, waited bool) {
	m.mu.Lock()
	if waited {
		m.queueDepth--
	}
	m.admitted++
	m.mu.Unlock()
	m.queueWait.Observe(wait, traceID)
	m.queueDepthH.ObserveMS(float64(depth), traceID)
}

// queueCancelled reverses queueEnter for a job whose caller abandoned the
// queue; no histogram records it.
func (m *metrics) queueCancelled() {
	m.mu.Lock()
	m.queueDepth--
	m.mu.Unlock()
}

// jobShed counts an admission rejection by reason and retains the trace ID
// as the shed counter's exemplar.
func (m *metrics) jobShed(reason, traceID string) {
	m.mu.Lock()
	m.shed++
	m.shedByReason[reason]++
	if traceID != "" {
		m.lastShed = Exemplar{TraceID: traceID, ValueMS: 1}
	}
	m.mu.Unlock()
}

// jobCoalesced counts a job served by joining an identical in-flight job.
func (m *metrics) jobCoalesced() {
	m.mu.Lock()
	m.coalesced++
	m.mu.Unlock()
}

func (m *metrics) jobStarted() {
	m.mu.Lock()
	m.jobsInFlight++
	m.mu.Unlock()
}

// phaseHist returns the accumulator for one named phase.
func (m *metrics) phaseHist(name string) *LogHist {
	m.phaseMu.Lock()
	h := m.phases[name]
	if h == nil {
		h = &LogHist{}
		m.phases[name] = h
	}
	m.phaseMu.Unlock()
	return h
}

func (m *metrics) jobFinished(res *JobResult) {
	m.e2eWall.Observe(res.E2E, res.TraceID)
	m.mu.Lock()
	m.jobsInFlight--
	m.jobsRun++
	if res.Err != nil {
		m.jobsFailed++
		m.mu.Unlock()
		return
	}
	if !res.CacheHit {
		m.funcsRecured += uint64(res.Incr.Recured)
		m.funcsLoaded += uint64(res.Incr.Loaded)
	}
	trapped := res.Run != nil && res.Run.Trapped
	if res.Run != nil {
		m.runsExecuted++
		if trapped {
			m.traps++
			m.trapsByKind[res.Run.TrapKind]++
		}
	}
	m.mu.Unlock()

	if !res.CacheHit {
		m.compileWall.Observe(res.CompileTime, res.TraceID)
		// Per-phase durations of the compile this job performed.
		for _, sp := range res.Phases {
			if sp.Depth == 2 && phaseNames[sp.Name] {
				m.phaseHist(sp.Name).ObserveMS(sp.DurMS, res.TraceID)
			}
		}
	}
	if res.Run != nil {
		m.runWall.Observe(res.RunTime, res.TraceID)
	}
}

// phaseNames are the span names observed into per-phase histograms: the
// compile phases (children of the request timeline's "compile" span) plus
// the aggregated artifact-store I/O spans.
var phaseNames = map[string]bool{
	"parse": true, "sema": true, "lower": true, "infer": true,
	"instrument": true, "optimize": true, "frontend-raw": true,
	"store-read": true, "store-write": true,
}

func (m *metrics) jobPanicked() {
	m.mu.Lock()
	m.jobsPanicked++
	m.mu.Unlock()
}

func (m *metrics) jobTimedOut() {
	m.mu.Lock()
	m.jobsTimedOut++
	m.mu.Unlock()
}

func (m *metrics) snapshot(workers int, cache CacheStats) Metrics {
	now := time.Now()
	m.mu.Lock()
	out := Metrics{
		SnapshotUnixMS: now.UnixMilli(),
		UptimeMS:       now.Sub(m.start).Milliseconds(),
		Workers:        workers,
		JobsInFlight:   m.jobsInFlight,
		QueueDepthNow:  m.queueDepth,
		JobsRun:        m.jobsRun,
		JobsFailed:     m.jobsFailed,
		JobsPanicked:   m.jobsPanicked,
		JobsTimedOut:   m.jobsTimedOut,
		RunsExecuted:   m.runsExecuted,
		Traps:          m.traps,
		Cache:          cache,
		FuncsRecured:   m.funcsRecured,
		FuncsLoaded:    m.funcsLoaded,
		Admitted:       m.admitted,
		Shed:           m.shed,
		Coalesced:      m.coalesced,

		TraceparentMalformed: m.tpMalformed,
	}
	if len(m.trapsByKind) > 0 {
		out.TrapsByKind = make(map[string]uint64, len(m.trapsByKind))
		for k, v := range m.trapsByKind {
			out.TrapsByKind[k] = v
		}
	}
	if len(m.shedByReason) > 0 {
		out.ShedByReason = make(map[string]uint64, len(m.shedByReason))
		for k, v := range m.shedByReason {
			out.ShedByReason[k] = v
		}
	}
	if m.lastShed.TraceID != "" {
		e := m.lastShed
		out.ShedExemplar = &e
	}
	m.mu.Unlock()

	out.E2EWall = m.e2eWall.Snapshot()
	out.QueueWait = m.queueWait.Snapshot()
	out.QueueDepth = m.queueDepthH.Snapshot()
	out.CompileWall = m.compileWall.Snapshot()
	out.RunWall = m.runWall.Snapshot()

	m.phaseMu.Lock()
	names := make([]string, 0, len(m.phases))
	for name := range m.phases {
		names = append(names, name)
	}
	hists := make([]*LogHist, len(names))
	sort.Strings(names)
	for i, name := range names {
		hists[i] = m.phases[name]
	}
	m.phaseMu.Unlock()
	for i, name := range names {
		out.Phases = append(out.Phases, PhaseHist{Phase: name, Hist: hists[i].Snapshot()})
	}
	return out
}

// ExpvarVar adapts the Runner's metrics to the expvar interface; publish it
// with expvar.Publish (ccserve does, under "gocured_pipeline") and it shows
// up on /debug/vars alongside the Go runtime's variables.
func (r *Runner) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return r.Metrics() })
}
