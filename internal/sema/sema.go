// Package sema performs symbol resolution and type checking on the parsed
// AST. Its most important job for CCured is making every conversion
// explicit: after Check, each implicit C conversion (argument passing,
// assignment, void* coercions, null-pointer constants, array decay) appears
// as a Cast node, because pointer-kind inference derives its constraints
// from casts.
package sema

import (
	"fmt"

	"gocured/internal/cparse"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
)

// FuncSema is the checked form of one function definition.
type FuncSema struct {
	Def    *cparse.FuncDef
	Params []*cparse.Symbol
	Locals []*cparse.Symbol // block-scoped locals, flattened and uniquified
}

// Unit is a checked translation unit.
type Unit struct {
	File    *cparse.File
	Globals []*cparse.Symbol // variables only, in declaration order
	Funcs   []*FuncSema      // defined functions, in source order
	// Symbols maps every global name (variables and functions) to its symbol.
	Symbols map[string]*cparse.Symbol
	// Externs lists functions declared but not defined (library boundary).
	Externs []*cparse.Symbol
}

type checker struct {
	diags  *diag.List
	unit   *Unit
	scopes []map[string]*cparse.Symbol
	cur    *FuncSema
	names  map[string]int // per-function local name uniquifier
}

// Check resolves and type checks file.
func Check(file *cparse.File, diags *diag.List) *Unit {
	c := &checker{
		diags: diags,
		unit: &Unit{
			File:    file,
			Symbols: make(map[string]*cparse.Symbol),
		},
	}
	c.collectGlobals()
	c.checkGlobalInits()
	for _, fd := range file.Funcs {
		if fd.Body != nil {
			c.checkFunc(fd)
		}
	}
	for _, name := range sortedNames(c.unit.Symbols) {
		sym := c.unit.Symbols[name]
		if sym.Kind == cparse.SymFunc && sym.Def == nil {
			c.unit.Externs = append(c.unit.Externs, sym)
		}
	}
	return c.unit
}

func sortedNames(m map[string]*cparse.Symbol) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func (c *checker) collectGlobals() {
	for _, g := range c.unit.File.Globals {
		if prev, ok := c.unit.Symbols[g.Name]; ok {
			// Tolerate re-declaration with an equal type (extern then def).
			if !ctypes.Equal(prev.Type, g.Type) {
				c.diags.Errorf(g.P, "conflicting declarations of %q: %s vs %s",
					g.Name, prev.Type, g.Type)
			}
			if g.Init != nil {
				prev.VDecl = g
				g.Sym = prev
			}
			continue
		}
		sym := &cparse.Symbol{Name: g.Name, Kind: cparse.SymVar, Type: g.Type, Global: true, VDecl: g}
		g.Sym = sym
		c.unit.Symbols[g.Name] = sym
		c.unit.Globals = append(c.unit.Globals, sym)
	}
	for _, fd := range c.unit.File.Funcs {
		if prev, ok := c.unit.Symbols[fd.Name]; ok {
			if prev.Kind != cparse.SymFunc {
				c.diags.Errorf(fd.P, "%q redeclared as a function", fd.Name)
				continue
			}
			if !signaturesCompatible(prev.Type, fd.Type) {
				c.diags.Errorf(fd.P, "conflicting declarations of function %q", fd.Name)
			}
			if fd.Body != nil {
				if prev.Def != nil && prev.Def.Body != nil {
					c.diags.Errorf(fd.P, "redefinition of function %q", fd.Name)
				}
				prev.Def = fd
				// Prefer the definition's type occurrence (it carries the
				// parameter names and annotation sites for the body).
				prev.Type = fd.Type
			}
			fd.Sym = prev
			continue
		}
		sym := &cparse.Symbol{Name: fd.Name, Kind: cparse.SymFunc, Type: fd.Type, Global: true}
		if fd.Body != nil {
			sym.Def = fd
		}
		fd.Sym = sym
		c.unit.Symbols[fd.Name] = sym
	}
}

func signaturesCompatible(a, b *ctypes.Type) bool {
	if a.Kind != ctypes.Func || b.Kind != ctypes.Func {
		return false
	}
	if len(a.Fn.Params) != len(b.Fn.Params) || a.Fn.Variadic != b.Fn.Variadic {
		return false
	}
	if !ctypes.Equal(a.Fn.Ret, b.Fn.Ret) {
		return false
	}
	for i := range a.Fn.Params {
		if !ctypes.Equal(a.Fn.Params[i], b.Fn.Params[i]) {
			return false
		}
	}
	return true
}

// ---- Scopes ----

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*cparse.Symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declareLocal(d *cparse.VarDecl, param bool) *cparse.Symbol {
	scope := c.scopes[len(c.scopes)-1]
	if _, dup := scope[d.Name]; dup {
		c.diags.Errorf(d.P, "redeclaration of %q in the same scope", d.Name)
	}
	name := d.Name
	if n := c.names[d.Name]; n > 0 {
		name = fmt.Sprintf("%s$%d", d.Name, n)
	}
	c.names[d.Name]++
	sym := &cparse.Symbol{Name: name, Kind: cparse.SymVar, Type: d.Type, Param: param, VDecl: d}
	scope[d.Name] = sym
	d.Sym = sym
	if param {
		c.cur.Params = append(c.cur.Params, sym)
	} else {
		c.cur.Locals = append(c.cur.Locals, sym)
	}
	return sym
}

func (c *checker) lookup(name string) *cparse.Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.unit.Symbols[name]
}

// ---- Functions ----

func (c *checker) checkFunc(fd *cparse.FuncDef) {
	fs := &FuncSema{Def: fd}
	c.cur = fs
	c.names = make(map[string]int)
	c.scopes = nil
	c.push()
	fn := fd.Type.Fn
	for i, pt := range fn.Params {
		name := ""
		if i < len(fn.Names) {
			name = fn.Names[i]
		}
		if name == "" {
			c.diags.Errorf(fd.P, "function %q parameter %d is unnamed", fd.Name, i)
			name = fmt.Sprintf("__p%d", i)
		}
		c.declareLocal(&cparse.VarDecl{P: fd.P, Name: name, Type: pt}, true)
	}
	c.checkBlock(fd.Body)
	c.pop()
	c.unit.Funcs = append(c.unit.Funcs, fs)
	c.cur = nil
}

func (c *checker) checkBlock(b *cparse.Block) {
	c.push()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.pop()
}

func (c *checker) checkStmt(s cparse.Stmt) {
	switch st := s.(type) {
	case *cparse.Block:
		c.checkBlock(st)
	case *cparse.Empty:
	case *cparse.ExprStmt:
		st.X = c.checkExpr(st.X)
	case *cparse.DeclStmt:
		for _, d := range st.Decls {
			if d.Type.Kind == ctypes.Array && d.Type.Len < 0 && d.Init != nil {
				c.completeArrayFromInit(d)
			}
			if ctypes.Sizeof(d.Type) == 0 && d.Type.Kind != ctypes.Func {
				c.diags.Errorf(d.P, "variable %q has incomplete type %s", d.Name, d.Type)
			}
			c.declareLocal(d, false)
			if d.Init != nil {
				c.checkInit(d.Init, d.Type)
			}
		}
	case *cparse.If:
		st.Cond = c.checkCond(st.Cond)
		c.checkStmt(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *cparse.While:
		st.Cond = c.checkCond(st.Cond)
		c.checkStmt(st.Body)
	case *cparse.DoWhile:
		c.checkStmt(st.Body)
		st.Cond = c.checkCond(st.Cond)
	case *cparse.For:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			st.Cond = c.checkCond(st.Cond)
		}
		if st.Post != nil {
			st.Post = c.checkExpr(st.Post)
		}
		c.checkStmt(st.Body)
		c.pop()
	case *cparse.Return:
		ret := c.cur.Def.Type.Fn.Ret
		if st.X == nil {
			if !ret.IsVoid() {
				c.diags.Errorf(st.Pos(), "function %q must return %s", c.cur.Def.Name, ret)
			}
			return
		}
		if ret.IsVoid() {
			c.diags.Errorf(st.Pos(), "void function %q returns a value", c.cur.Def.Name)
			st.X = c.checkExpr(st.X)
			return
		}
		st.X = c.convert(c.checkExpr(st.X), ret)
	case *cparse.Break, *cparse.Continue:
	case *cparse.Switch:
		st.X = c.checkExpr(st.X)
		if !st.X.Type().IsInteger() {
			c.diags.Errorf(st.Pos(), "switch expression must be an integer, got %s", st.X.Type())
		}
		for _, cs := range st.Cases {
			for _, s2 := range cs.Stmts {
				c.checkStmt(s2)
			}
		}
	default:
		c.diags.Errorf(s.Pos(), "unhandled statement %T", s)
	}
}

// completeArrayFromInit gives `T a[] = {...}` its length.
func (c *checker) completeArrayFromInit(d *cparse.VarDecl) {
	switch {
	case d.Init.IsList:
		d.Type.Len = len(d.Init.List)
	case d.Init.Expr != nil:
		if s, ok := d.Init.Expr.(*cparse.StrLit); ok && d.Type.Elem.IsInteger() && d.Type.Elem.Size == 1 {
			d.Type.Len = len(s.Val) + 1
		}
	}
	if d.Type.Len < 0 {
		c.diags.Errorf(d.P, "cannot deduce length of array %q", d.Name)
		d.Type.Len = 1
	}
}

// checkInit type checks an initializer against the declared type.
func (c *checker) checkInit(in *cparse.Initializer, ty *ctypes.Type) {
	if in.IsList {
		switch ty.Kind {
		case ctypes.Array:
			if ty.Len >= 0 && len(in.List) > ty.Len {
				c.diags.Errorf(in.P, "too many initializers for %s", ty)
			}
			for _, e := range in.List {
				c.checkInit(e, ty.Elem)
			}
		case ctypes.Struct:
			if ty.SU.Union {
				if len(in.List) > 1 {
					c.diags.Errorf(in.P, "too many initializers for union")
				}
				if len(in.List) == 1 && len(ty.SU.Fields) > 0 {
					c.checkInit(in.List[0], ty.SU.Fields[0].Type)
				}
				return
			}
			if len(in.List) > len(ty.SU.Fields) {
				c.diags.Errorf(in.P, "too many initializers for %s", ty)
			}
			for i, e := range in.List {
				if i < len(ty.SU.Fields) {
					c.checkInit(e, ty.SU.Fields[i].Type)
				}
			}
		default:
			if len(in.List) != 1 {
				c.diags.Errorf(in.P, "brace-list initializer for scalar %s", ty)
			}
			if len(in.List) >= 1 {
				c.checkInit(in.List[0], ty)
			}
		}
		return
	}
	// Scalar initializer; `char a[n] = "str"` is also allowed.
	if s, ok := in.Expr.(*cparse.StrLit); ok && ty.Kind == ctypes.Array &&
		ty.Elem.IsInteger() && ty.Elem.Size == 1 {
		if ty.Len >= 0 && len(s.Val)+1 > ty.Len {
			c.diags.Errorf(in.P, "string literal longer than array")
		}
		s.SetType(ctypes.ArrayOf(ctypes.CharType(), len(s.Val)+1))
		return
	}
	in.Expr = c.convert(c.checkExpr(in.Expr), ty)
}

// checkCond checks a boolean context expression (any scalar type).
func (c *checker) checkCond(e cparse.Expr) cparse.Expr {
	e = c.checkExpr(e)
	if !e.Type().IsScalar() {
		c.diags.Errorf(e.Pos(), "condition must be scalar, got %s", e.Type())
	}
	return e
}

// CheckGlobals type checks global initializers; called by Check for the
// unit's own globals after symbol collection.
func (c *checker) checkGlobalInits() {
	for _, g := range c.unit.File.Globals {
		if g.Init == nil {
			continue
		}
		if g.Type.Kind == ctypes.Array && g.Type.Len < 0 {
			c.completeArrayFromInit(g)
		}
		c.checkInit(g.Init, g.Type)
	}
}
