package vm

import (
	"gocured/internal/cil"
	"gocured/internal/ctypes"
)

// FrameLayout places a function's parameters and locals into one stack
// frame and returns the frame size and per-variable offsets. It is the
// single source of truth for activation-record layout: the tree backend's
// layoutOf delegates here and the bytecode compiler resolves OpAddrLocal
// offsets from it, so a local variable has the same simulated address
// under both backends (frame addresses are observable through pointer
// arithmetic and trap messages).
func FrameLayout(fn *cil.Func, lay Layout) (size uint32, offsets map[*cil.Var]uint32) {
	offsets = make(map[*cil.Var]uint32, len(fn.Params)+len(fn.Locals))
	off := uint32(0)
	place := func(v *cil.Var) {
		a := uint32(lay.Alignof(v.Type))
		if a == 0 {
			a = 1
		}
		off = (off + a - 1) / a * a
		offsets[v] = off
		sz := uint32(lay.Sizeof(v.Type))
		if sz == 0 {
			sz = 4
		}
		off += sz
	}
	for _, p := range fn.Params {
		place(p)
	}
	for _, l := range fn.Locals {
		place(l)
	}
	size = (off + 7) &^ 7
	if size == 0 {
		size = 8
	}
	return size, offsets
}

// scalarSize is Sizeof clamped to uint32 for operand encoding.
func scalarSize(lay Layout, t *ctypes.Type) int32 {
	return int32(lay.Sizeof(t))
}
