// Command ccrun compiles and executes a C source file on the gocured
// simulated machine, either raw or cured (or under the Purify/Valgrind-
// style shadow policies).
//
// Usage:
//
//	ccrun [-mode raw|cured|purify|valgrind] [-stdin file] [-trust] file.c
package main

import (
	"flag"
	"fmt"
	"os"

	"gocured"
)

func main() {
	mode := flag.String("mode", "cured", "execution mode: raw, cured, purify, valgrind")
	stdinFile := flag.String("stdin", "", "file whose bytes feed getchar()")
	trust := flag.Bool("trust", false, "trust remaining bad casts")
	steps := flag.Uint64("steps", 0, "step limit (0 = default)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccrun [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var m gocured.Mode
	switch *mode {
	case "raw":
		m = gocured.ModeRaw
	case "cured":
		m = gocured.ModeCured
	case "purify":
		m = gocured.ModePurify
	case "valgrind":
		m = gocured.ModeValgrind
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var stdin []byte
	if *stdinFile != "" {
		stdin, err = os.ReadFile(*stdinFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	prog, err := gocured.Compile(file, string(src), gocured.Options{TrustBadCasts: *trust})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := prog.Run(m, gocured.RunOptions{Stdin: stdin, StepLimit: *steps})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.WriteString(res.Stdout)
	for _, r := range res.ToolReports {
		fmt.Fprintln(os.Stderr, r)
	}
	fmt.Fprintf(os.Stderr, "[%s] steps=%d checks=%d mem=%d\n",
		*mode, res.Steps, res.Checks, res.MemAccesses)
	if res.Trapped {
		at := ""
		if res.TrapPos != "" {
			at = " at " + res.TrapPos
		}
		fmt.Fprintf(os.Stderr, "TRAP (%s)%s: %s\n", res.TrapKind, at, res.TrapMessage)
		for _, fn := range res.TrapStack {
			fmt.Fprintf(os.Stderr, "  in %s\n", fn)
		}
		for _, l := range res.TrapBlame {
			fmt.Fprintf(os.Stderr, "  | %s\n", l)
		}
		os.Exit(3)
	}
	os.Exit(res.ExitCode)
}
