package pipeline

import (
	"bytes"
	"context"
	"testing"
	"time"

	"gocured"
	"gocured/internal/flight"
)

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	ch, cancel := b.Subscribe(8)
	defer cancel()
	b.Publish(JobEvent{Type: "job_start", Name: "a.c"})
	b.Publish(JobEvent{Type: "job_done", Name: "a.c"})
	ev1 := <-ch
	ev2 := <-ch
	if ev1.Type != "job_start" || ev2.Type != "job_done" {
		t.Fatalf("got %s, %s", ev1.Type, ev2.Type)
	}
	if ev1.Seq == 0 || ev2.Seq != ev1.Seq+1 {
		t.Errorf("seq = %d, %d; want consecutive from 1", ev1.Seq, ev2.Seq)
	}
	if ev1.Time.IsZero() {
		t.Error("event not timestamped")
	}
}

func TestBusSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus()
	ch, cancel := b.Subscribe(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ { // must never block, even with a full buffer
			b.Publish(JobEvent{Type: "job_start"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	ev := <-ch
	if ev.Seq != 1 {
		t.Errorf("first buffered event has seq %d, want 1", ev.Seq)
	}
	// The next event (if any) shows the gap where events were dropped.
	select {
	case ev2 := <-ch:
		if ev2.Seq <= ev.Seq {
			t.Errorf("seq went backwards: %d after %d", ev2.Seq, ev.Seq)
		}
	default:
	}
}

func TestBusUnsubscribeClosesChannel(t *testing.T) {
	b := NewBus()
	ch, cancel := b.Subscribe(1)
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Error("channel still open after unsubscribe")
	}
	if n := b.Subscribers(); n != 0 {
		t.Errorf("subscribers = %d after unsubscribe", n)
	}
	b.Publish(JobEvent{Type: "job_start"}) // must not panic
}

// TestRunnerPublishesJobEvents tails the Runner's bus through a trapping
// cured run and expects start, trap, and done events in order.
func TestRunnerPublishesJobEvents(t *testing.T) {
	r := NewRunner(RunnerOptions{Workers: 1})
	ch, cancel := r.Events().Subscribe(16)
	defer cancel()
	res := r.Do(context.Background(), Job{
		Name: "oob.c", Source: tinyOOB, Run: true, Mode: gocured.ModeCured,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Run == nil || !res.Run.Trapped {
		t.Fatal("cured out-of-bounds program did not trap")
	}
	var types []string
	for len(types) < 3 {
		select {
		case ev := <-ch:
			types = append(types, ev.Type)
			if ev.Type == "trap" && (ev.TrapKind == "" || ev.TrapPos == "") {
				t.Errorf("trap event missing attribution: %+v", ev)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("saw only %v before timeout", types)
		}
	}
	want := []string{"job_start", "trap", "job_done"}
	for i, w := range want {
		if types[i] != w {
			t.Fatalf("event order %v, want %v", types, want)
		}
	}
}

// TestRunnerFlightRecording runs jobs with a Recorder attached and demands
// a valid per-worker Perfetto trace out the other end.
func TestRunnerFlightRecording(t *testing.T) {
	rec := flight.NewRecorder(0)
	r := NewRunner(RunnerOptions{Workers: 2, Flight: rec})
	jobs := []Job{
		{Name: "ok.c", Source: tinyOK, Run: true, Mode: gocured.ModeCured},
		{Name: "oob.c", Source: tinyOOB, Run: true, Mode: gocured.ModeCured},
		{Name: "ok2.c", Source: tinyOK, Run: true, Mode: gocured.ModeRaw},
	}
	for _, res := range r.DoAll(context.Background(), jobs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	rings := rec.Rings()
	if len(rings) == 0 {
		t.Fatal("no worker rings recorded")
	}
	var buf bytes.Buffer
	if err := flight.WriteTrace(&buf, rings); err != nil {
		t.Fatal(err)
	}
	n, err := flight.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("pipeline trace invalid: %v", err)
	}
	// 3 jobs x (job + compile + run) begin/end pairs at minimum.
	if n < 18 {
		t.Errorf("trace has %d events, want >= 18", n)
	}
}

func TestMetricsBuildInfo(t *testing.T) {
	r := NewRunner(RunnerOptions{Workers: 1})
	m := r.Metrics()
	if m.Build.Version != gocured.Version {
		t.Errorf("build version %q, want %q", m.Build.Version, gocured.Version)
	}
	if m.Build.GoVersion == "" || m.Build.Optimizer != "on" {
		t.Errorf("build info incomplete: %+v", m.Build)
	}
	var buf bytes.Buffer
	WritePrometheus(&buf, m)
	if !bytes.Contains(buf.Bytes(), []byte(`gocured_build_info{version="`+gocured.Version+`"`)) {
		t.Errorf("prometheus output missing gocured_build_info:\n%s", buf.String()[:200])
	}
}
