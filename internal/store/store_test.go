package store

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gocured/internal/cil"
	"gocured/internal/corpus"
	"gocured/internal/cparse"
	"gocured/internal/diag"
	"gocured/internal/infer"
	"gocured/internal/sema"
)

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := open(t, t.TempDir())
	key := sha256.Sum256([]byte("k1"))
	payload := []byte("hello chunks")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if _, ok := s.Get(sha256.Sum256([]byte("absent"))); ok {
		t.Fatal("Get of absent key hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Chunks != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes != int64(headerSize+len(payload)) {
		t.Fatalf("bytes = %d, want %d", st.Bytes, headerSize+len(payload))
	}
}

func TestReopenScansExistingChunks(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	key := sha256.Sum256([]byte("persist"))
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if st := s2.Stats(); st.Chunks != 1 || st.Bytes == 0 {
		t.Fatalf("reopened stats %+v, want 1 chunk scanned", st)
	}
	if got, ok := s2.Get(key); !ok || string(got) != "payload" {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
}

// corruptChunk applies f to the single chunk file under dir and rewrites it.
func corruptChunk(t *testing.T, s *Store, key [sha256.Size]byte, f func([]byte) []byte) {
	t.Helper()
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(data), 0o666); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptChunkIsDroppedNotServed(t *testing.T) {
	cases := []struct {
		name string
		f    func([]byte) []byte
	}{
		{"bit-flip payload", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }},
		{"bit-flip digest", func(b []byte) []byte { b[10] ^= 0x01; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated to header", func(b []byte) []byte { return b[:headerSize][:5] }},
		{"wrong magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t, t.TempDir())
			key := sha256.Sum256([]byte(tc.name))
			if err := s.Put(key, []byte("precious artifact payload")); err != nil {
				t.Fatal(err)
			}
			corruptChunk(t, s, key, tc.f)
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt chunk served: %q", got)
			}
			if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
				t.Fatal("corrupt chunk not removed from disk")
			}
			st := s.Stats()
			if st.CorruptDropped != 1 || st.Chunks != 0 {
				t.Fatalf("stats %+v, want 1 corrupt dropped, 0 chunks", st)
			}
			// The store recovers: a rewrite serves again.
			if err := s.Put(key, []byte("rewritten")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || string(got) != "rewritten" {
				t.Fatalf("rewrite Get = %q, %v", got, ok)
			}
		})
	}
}

func TestPutIsIdempotent(t *testing.T) {
	s := open(t, t.TempDir())
	key := sha256.Sum256([]byte("idem"))
	for i := 0; i < 3; i++ {
		if err := s.Put(key, []byte("same")); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Writes != 1 || st.Chunks != 1 {
		t.Fatalf("stats %+v, want a single write", st)
	}
}

func lower(t *testing.T, name, src string) (*cil.Program, *diag.List) {
	t.Helper()
	var d diag.List
	file := cparse.Parse(name, src, &d)
	unit := sema.Check(file, &d)
	prog := cil.Lower(unit, &d)
	if d.HasErrors() {
		t.Fatalf("%s: frontend errors:\n%v", name, d.Err())
	}
	return prog, &d
}

// TestArtifactsWarmRestart drives the real inference through an on-disk
// source across two store handles (two "processes"): the second run loads
// every storable summary instead of re-collecting.
func TestArtifactsWarmRestart(t *testing.T) {
	dir := t.TempDir()
	p := corpus.All()[0]
	opts := infer.Options{TrustBadCasts: p.TrustBadCasts}

	src := NewArtifacts(open(t, dir), "v-test", "go-test").ForOptions(opts)
	prog1, d1 := lower(t, p.Name, p.Source)
	_, cold := infer.InferIncremental(prog1, opts, d1, src)
	if cold.Recured != cold.Funcs || cold.Loaded != 0 {
		t.Fatalf("cold stats %+v", cold)
	}

	src2 := NewArtifacts(open(t, dir), "v-test", "go-test").ForOptions(opts)
	prog2, d2 := lower(t, p.Name, p.Source)
	_, warm := infer.InferIncremental(prog2, opts, d2, src2)
	if warm.Loaded != warm.Funcs-warm.Unstorable {
		t.Fatalf("warm stats %+v, want all storable functions loaded", warm)
	}
}

// TestArtifactsKeySchema asserts the invalidation axes: gocured version, Go
// version, and inference options each address disjoint chunks.
func TestArtifactsKeySchema(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	p := corpus.All()[0]
	opts := infer.Options{TrustBadCasts: p.TrustBadCasts}

	prog, d := lower(t, p.Name, p.Source)
	_, cold := infer.InferIncremental(prog, opts, d, NewArtifacts(s, "v1", "go1").ForOptions(opts))

	for _, tc := range []struct {
		name string
		src  infer.SummarySource
	}{
		{"gocured version changed", NewArtifacts(s, "v2", "go1").ForOptions(opts)},
		{"go version changed", NewArtifacts(s, "v1", "go2").ForOptions(opts)},
		{"options changed", NewArtifacts(s, "v1", "go1").ForOptions(infer.Options{NoRTTI: true})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog, d := lower(t, p.Name, p.Source)
			_, st := infer.InferIncremental(prog, opts, d, tc.src)
			if st.Loaded != 0 || st.Recured != cold.Funcs {
				t.Fatalf("stats %+v: stale chunks served across a version boundary", st)
			}
		})
	}
}

// TestArtifactsCorruptionRecure corrupts every chunk on disk between two
// inference runs: the second run must detect each bad chunk, recompile the
// functions, rewrite the chunks, and still serve a third run warm.
func TestArtifactsCorruptionRecure(t *testing.T) {
	dir := t.TempDir()
	p := corpus.All()[0]
	opts := infer.Options{TrustBadCasts: p.TrustBadCasts}
	arts := NewArtifacts(open(t, dir), "v-test", "go-test")
	src := arts.ForOptions(opts)

	prog1, d1 := lower(t, p.Name, p.Source)
	res1, _ := infer.InferIncremental(prog1, opts, d1, src)
	want := res1.ComputeStats()

	// Flip one payload byte in every chunk file.
	var corrupted int
	err := filepath.Walk(filepath.Join(dir, "objects"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || strings.HasPrefix(info.Name(), "tmp-") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)-1] ^= 0x80
		corrupted++
		return os.WriteFile(path, data, 0o666)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("no chunks written by cold run")
	}

	prog2, d2 := lower(t, p.Name, p.Source)
	res2, st2 := infer.InferIncremental(prog2, opts, d2, src)
	if st2.Loaded != 0 || st2.Recured != st2.Funcs {
		t.Fatalf("corrupt-store stats %+v, want everything recured", st2)
	}
	if got := res2.ComputeStats(); got != want {
		t.Fatalf("recompile after corruption diverged: %+v vs %+v", got, want)
	}
	if cs := arts.Store().Stats(); cs.CorruptDropped != int64(corrupted) {
		t.Fatalf("CorruptDropped = %d, want %d", cs.CorruptDropped, corrupted)
	}

	prog3, d3 := lower(t, p.Name, p.Source)
	_, st3 := infer.InferIncremental(prog3, opts, d3, src)
	if st3.Loaded != st3.Funcs-st3.Unstorable {
		t.Fatalf("post-recovery stats %+v, want warm", st3)
	}
}
