package interp_test

import (
	"strings"
	"testing"

	"gocured/internal/core"
	"gocured/internal/infer"
	"gocured/internal/interp"
)

// build compiles src with default options.
func build(t *testing.T, src string) *core.Unit {
	t.Helper()
	u, err := core.Build("test.c", src, infer.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return u
}

// runRaw executes the uninstrumented program.
func runRaw(t *testing.T, u *core.Unit) *interp.Outcome {
	t.Helper()
	out, err := u.RunRaw(interp.PolicyNone, interp.Config{})
	if err != nil {
		t.Fatalf("run raw: %v", err)
	}
	return out
}

// runCured executes the instrumented program.
func runCured(t *testing.T, u *core.Unit) *interp.Outcome {
	t.Helper()
	out, err := u.RunCured(interp.Config{})
	if err != nil {
		t.Fatalf("run cured: %v", err)
	}
	return out
}

// both runs raw and cured and demands identical stdout and exit code with
// no traps — the transformation must preserve semantics of correct code.
func both(t *testing.T, src string) (*interp.Outcome, *interp.Outcome) {
	t.Helper()
	u := build(t, src)
	raw := runRaw(t, u)
	cured := runCured(t, u)
	if raw.Trap != nil {
		t.Fatalf("raw trap: %v", raw.Trap)
	}
	if cured.Trap != nil {
		t.Fatalf("cured trap: %v", cured.Trap)
	}
	if raw.Stdout != cured.Stdout {
		t.Fatalf("output mismatch:\nraw:   %q\ncured: %q", raw.Stdout, cured.Stdout)
	}
	if raw.ExitCode != cured.ExitCode {
		t.Fatalf("exit code mismatch: raw %d, cured %d", raw.ExitCode, cured.ExitCode)
	}
	return raw, cured
}

func TestRunHello(t *testing.T) {
	raw, cured := both(t, `
int printf(char *fmt, ...);
int main(void) {
    printf("hello, %s! %d\n", "world", 42);
    return 0;
}
`)
	if raw.Stdout != "hello, world! 42\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
	_ = cured // a pure literal-printing main legitimately needs no checks
}

func TestRunArithmetic(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int main(void) {
    int a = 7, b = -3;
    unsigned int u = 0xFFFFFFFF;
    double d = 2.5;
    printf("%d %d %d %d\n", a + b, a * b, a / b, a % b);
    printf("%u %u\n", u / 2u, u >> 4);
    printf("%g %g\n", d * 4.0, d / 2.0);
    printf("%d %d %d\n", a << 2, a & 5, a ^ 1);
    return 0;
}
`)
	want := "4 -21 -2 1\n2147483647 268435455\n10 1.25\n28 5 6\n"
	if raw.Stdout != want {
		t.Errorf("stdout = %q, want %q", raw.Stdout, want)
	}
}

func TestRunControlFlow(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps++;
    }
    return steps;
}
int main(void) {
    int i;
    int total = 0;
    for (i = 1; i <= 10; i++) total += collatz(i);
    printf("%d\n", total);
    do { total--; } while (total > 60);
    printf("%d\n", total);
    switch (total) {
    case 60: printf("sixty\n"); break;
    default: printf("other\n");
    }
    return 0;
}
`)
	if raw.Stdout != "67\n60\nsixty\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestRunPointersAndArrays(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int sum(int *p, int n) {
    int t = 0;
    int i;
    for (i = 0; i < n; i++) t += p[i];
    return t;
}
int main(void) {
    int a[8];
    int i;
    int *q;
    for (i = 0; i < 8; i++) a[i] = i * i;
    q = a + 3;
    printf("%d %d %d\n", sum(a, 8), *q, q[2]);
    return 0;
}
`)
	if raw.Stdout != "140 9 25\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestRunStructsAndLists(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
void *malloc(unsigned int n);
struct Node { int val; struct Node *next; };
int main(void) {
    struct Node *head = 0;
    int i;
    for (i = 0; i < 5; i++) {
        struct Node *n = (struct Node*)malloc(sizeof(struct Node));
        n->val = i;
        n->next = head;
        head = n;
    }
    int sum = 0;
    while (head) { sum = sum * 10 + head->val; head = head->next; }
    printf("%d\n", sum);
    return 0;
}
`)
	if raw.Stdout != "43210\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestRunFunctionPointers(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int main(void) {
    int (*ops[2])(int, int);
    int i;
    ops[0] = add;
    ops[1] = mul;
    for (i = 0; i < 2; i++) printf("%d ", ops[i](3, 4));
    printf("\n");
    return 0;
}
`)
	if raw.Stdout != "7 12 \n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestRunOOPolymorphism(t *testing.T) {
	// The paper's Figure/Circle example end to end: upcast, dynamic
	// dispatch, checked downcast.
	raw, cured := both(t, `
int printf(char *fmt, ...);
void *malloc(unsigned int n);
struct Figure { int (*area100)(struct Figure *obj); };
struct Circle { int (*area100)(struct Figure *obj); int radius; };
struct Square { int (*area100)(struct Figure *obj); int side; };

int circle_area(struct Figure *obj) {
    struct Circle *c = (struct Circle*)obj;
    return 314 * c->radius * c->radius / 100;
}
int square_area(struct Figure *obj) {
    struct Square *s = (struct Square*)obj;
    return s->side * s->side;
}
int main(void) {
    struct Circle *c = (struct Circle*)malloc(sizeof(struct Circle));
    struct Square *s = (struct Square*)malloc(sizeof(struct Square));
    struct Figure *figs[2];
    int i, total = 0;
    c->area100 = circle_area;
    c->radius = 2;
    s->area100 = square_area;
    s->side = 3;
    figs[0] = (struct Figure*)c;
    figs[1] = (struct Figure*)s;
    for (i = 0; i < 2; i++) total += figs[i]->area100(figs[i]);
    printf("%d\n", total);
    return 0;
}
`)
	if raw.Stdout != "21\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
	if cured.Counters.ChecksByKind[6 /* cil.CheckRtti */] == 0 {
		// index 6 is CheckRtti in the CheckKind enumeration
		t.Log("note: no RTTI checks executed; acceptable if downcast source inferred SAFE")
	}
}

func TestRunStringsAndLibc(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
char *strcpy(char *dst, char *src);
char *strcat(char *dst, char *src);
int strlen(char *s);
int strcmp(char *a, char *b);
char *strchr(char *s, int c);
int main(void) {
    char buf[64];
    strcpy(buf, "hello");
    strcat(buf, ", world");
    printf("%s %d\n", buf, strlen(buf));
    printf("%d\n", strcmp(buf, "hello, world"));
    char *comma = strchr(buf, ',');
    printf("%s\n", comma + 2);
    return 0;
}
`)
	want := "hello, world 12\n0\nworld\n"
	if raw.Stdout != want {
		t.Errorf("stdout = %q, want %q", raw.Stdout, want)
	}
}

func TestRunQsortCallback(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
void qsort(void *base, unsigned int n, unsigned int size,
           int (*cmp)(void *a, void *b));
int cmp_int(void *a, void *b) {
    int x = *(int*)a;
    int y = *(int*)b;
    return x - y;
}
int main(void) {
    int a[6];
    int i;
    a[0]=5; a[1]=2; a[2]=9; a[3]=1; a[4]=7; a[5]=3;
    qsort(a, 6, sizeof(int), cmp_int);
    for (i = 0; i < 6; i++) printf("%d ", a[i]);
    printf("\n");
    return 0;
}
`)
	if raw.Stdout != "1 2 3 5 7 9 \n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestCuredTrapsBufferOverflow(t *testing.T) {
	// Off-by-one overflow of a stack array: raw runs to completion (the
	// corruption lands in the frame), cured traps on the bounds check.
	u := build(t, `
int main(void) {
    int a[4];
    int i;
    for (i = 0; i <= 4; i++) a[i] = i;
    return a[0];
}
`)
	raw := runRaw(t, u)
	if raw.Trap != nil {
		t.Fatalf("raw run should tolerate the overflow, got %v", raw.Trap)
	}
	cured := runCured(t, u)
	if cured.Trap == nil {
		t.Fatal("cured run must trap on the overflow")
	}
	if cured.Trap.Kind != "bounds" {
		t.Errorf("trap kind = %s, want bounds", cured.Trap.Kind)
	}
}

func TestCuredTrapsHeapOverflow(t *testing.T) {
	u := build(t, `
void *malloc(unsigned int n);
int main(void) {
    int *p = (int*)malloc(4 * sizeof(int));
    int i;
    for (i = 0; i < 8; i++) p[i] = i;
    return p[0];
}
`)
	raw := runRaw(t, u)
	if raw.Trap != nil {
		t.Fatalf("raw heap overflow stays silent in-arena, got %v", raw.Trap)
	}
	cured := runCured(t, u)
	if cured.Trap == nil || cured.Trap.Kind != "bounds" {
		t.Fatalf("cured run must trap bounds, got %v", cured.Trap)
	}
}

func TestCuredTrapsNullDeref(t *testing.T) {
	u := build(t, `
int main(void) {
    int *p = 0;
    return *p;
}
`)
	cured := runCured(t, u)
	if cured.Trap == nil || cured.Trap.Kind != "null" {
		t.Fatalf("want null trap, got %v", cured.Trap)
	}
}

func TestCuredTrapsBadDowncast(t *testing.T) {
	u := build(t, `
struct Figure { int (*f)(struct Figure*); };
struct Circle { int (*f)(struct Figure*); int radius; };
struct Figure fig;
int dummy(struct Figure *x) { return 0; }
int main(void) {
    struct Figure *fp = &fig;
    struct Circle *c;
    fig.f = dummy;
    c = (struct Circle*)fp;   /* downcast of a genuine Figure: must fail */
    return c->radius;
}
`)
	cured := runCured(t, u)
	if cured.Trap == nil || cured.Trap.Kind != "rtti" {
		t.Fatalf("want rtti trap, got %v", cured.Trap)
	}
}

func TestCuredAllowsValidDowncast(t *testing.T) {
	_, cured := both(t, `
int printf(char *fmt, ...);
struct Figure { int (*f)(struct Figure*); };
struct Circle { int (*f)(struct Figure*); int radius; };
struct Circle circ;
int dummy(struct Figure *x) { return 0; }
int main(void) {
    struct Figure *fp;
    struct Circle *c;
    circ.f = dummy;
    circ.radius = 11;
    fp = (struct Figure*)&circ;
    c = (struct Circle*)fp;
    printf("%d\n", c->radius);
    return 0;
}
`)
	if !strings.Contains(cured.Stdout, "11") {
		t.Errorf("stdout = %q", cured.Stdout)
	}
}

func TestCuredTrapsStackEscape(t *testing.T) {
	u := build(t, `
int *cell;
int **heap_cell;
void *malloc(unsigned int n);
void leak(void) {
    int local = 5;
    *heap_cell = &local;   /* stack pointer escapes to the heap */
}
int main(void) {
    heap_cell = (int**)malloc(sizeof(int*));
    leak();
    return 0;
}
`)
	cured := runCured(t, u)
	if cured.Trap == nil || cured.Trap.Kind != "stack-escape" {
		t.Fatalf("want stack-escape trap, got %v", cured.Trap)
	}
}

func TestCuredTrapsFormatStringBug(t *testing.T) {
	// The Spec95 bug the paper found: printf %s given a non-pointer.
	u := build(t, `
int printf(char *fmt, ...);
int main(void) {
    printf("%s\n", 42);
    return 0;
}
`)
	cured := runCured(t, u)
	if cured.Trap == nil || cured.Trap.Kind != "format" {
		t.Fatalf("want format trap, got %v", cured.Trap)
	}
}

func TestRawCorruptionIsReal(t *testing.T) {
	// The overflow of buf corrupts the adjacent `secret` global in raw
	// mode — memory corruption really happens in the simulated arena.
	u := build(t, `
int printf(char *fmt, ...);
char buf[8];
int secret = 12345;
char *strcpy(char *dst, char *src);
int main(void) {
    strcpy(buf, "AAAAAAAAAAAAAAAA");  /* 16 A's into 8 bytes */
    printf("%d\n", secret);
    return 0;
}
`)
	raw := runRaw(t, u)
	if raw.Trap != nil {
		t.Fatalf("raw overflow should not trap, got %v", raw.Trap)
	}
	if strings.Contains(raw.Stdout, "12345") {
		t.Errorf("secret survived the overflow: %q", raw.Stdout)
	}
	cured := runCured(t, u)
	if cured.Trap == nil {
		t.Fatal("cured strcpy must trap on the overflow")
	}
}

func TestWildPointers(t *testing.T) {
	// A genuinely bad cast makes pointers WILD; well-behaved wild code
	// still runs correctly (tags maintained).
	raw, cured := both(t, `
int printf(char *fmt, ...);
struct A { int x; int y; };
struct B { float f; int z; };
struct A a;
int main(void) {
    struct A *pa = &a;
    struct B *pb = (struct B*)pa;   /* bad cast: WILD */
    pb->z = 7;
    printf("%d %d\n", a.y, pb->z);
    return 0;
}
`)
	_ = raw
	if cured.Stdout != "7 7\n" {
		t.Errorf("cured stdout = %q", cured.Stdout)
	}
}

func TestWildTagViolationTraps(t *testing.T) {
	// Writing an integer over a pointer inside a WILD area, then reading
	// it back as a pointer, must fail the tag check.
	u := build(t, `
struct A { int *p; int pad; };
struct B { int i; int pad; };
int g;
struct A a;
int main(void) {
    struct A *pa = &a;
    struct B *pb = (struct B*)pa;   /* bad cast: both WILD */
    pa->p = &g;
    pb->i = 1234;       /* overwrite the pointer with an int */
    return *(pa->p);    /* tag check must fail */
}
`)
	cured := runCured(t, u)
	if cured.Trap == nil {
		t.Fatal("expected a trap from the WILD tag check")
	}
	if cured.Trap.Kind != "tag" && cured.Trap.Kind != "bounds" && cured.Trap.Kind != "null" {
		t.Errorf("trap kind = %s, want tag-related", cured.Trap.Kind)
	}
}

func TestPurifyDetectsHeapOverflowMissesStack(t *testing.T) {
	heap := `
void *malloc(unsigned int n);
int main(void) {
    char *p = (char*)malloc(8);
    p[40] = 1;  /* past the block: lands in the heap red zone */
    return 0;
}
`
	u := build(t, heap)
	out, err := u.RunRaw(interp.PolicyPurify, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.ToolReports) == 0 {
		t.Error("purify-style policy should report the wild heap store")
	}

	stack := `
int main(void) {
    int a[4];
    int i;
    for (i = 0; i <= 4; i++) a[i] = i;  /* stays inside the frame */
    return 0;
}
`
	u2 := build(t, stack)
	out2, err := u2.RunRaw(interp.PolicyPurify, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.ToolReports) != 0 {
		t.Errorf("purify-style policy should miss stack-array overflow, got %v", out2.ToolReports)
	}
}

func TestGethostbynameLibraryCompat(t *testing.T) {
	// The §4.2 demo: a library-built structure with thin pointers is read
	// directly by cured code through split types.
	raw, cured := both(t, `
int printf(char *fmt, ...);
struct hostent { char *h_name; char **h_aliases; int h_addrtype; };
struct hostent *gethostbyname(char *name);
int main(void) {
    struct hostent __SPLIT * h = gethostbyname("example.org");
    printf("%s %d\n", h->h_name, h->h_addrtype);
    printf("%s\n", h->h_aliases[0]);
    return 0;
}
`)
	want := "example.org 2\nalias0.example.org\n"
	if raw.Stdout != want {
		t.Errorf("raw stdout = %q", raw.Stdout)
	}
	if cured.Stdout != want {
		t.Errorf("cured stdout = %q", cured.Stdout)
	}
}

func TestGlobalInitializers(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
struct P { int x; int y; };
struct P pts[2] = { {1, 2}, {3, 4} };
char *greeting = "hi";
int total = 10;
int f(void) { return 1; }
int (*fp)(void) = f;
int main(void) {
    printf("%d %d %s %d %d\n", pts[0].x, pts[1].y, greeting, total, fp());
    return 0;
}
`)
	if raw.Stdout != "1 4 hi 10 1\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestUseAfterFreeDetectedByValgrindPolicy(t *testing.T) {
	u := build(t, `
void *malloc(unsigned int n);
void free(void *p);
int main(void) {
    int *p = (int*)malloc(4);
    *p = 5;
    free(p);
    return *p;   /* use after free */
}
`)
	out, err := u.RunRaw(interp.PolicyValgrind, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.ToolReports) == 0 {
		t.Error("valgrind-style policy should report the use-after-free")
	}
}

func TestCheckCountsPositive(t *testing.T) {
	_, cured := both(t, `
int printf(char *fmt, ...);
int main(void) {
    int a[16];
    int *p = a;
    int i, t = 0;
    for (i = 0; i < 16; i++) { p[i] = i; }
    for (i = 0; i < 16; i++) { t += a[i]; }
    printf("%d\n", t);
    return 0;
}
`)
	if cured.Counters.Checks == 0 {
		t.Fatal("no checks executed")
	}
	if cured.Counters.Steps == 0 {
		t.Fatal("no steps counted")
	}
}
