// Exploit demo: the corpus ftpd daemon carries the real ftpd-BSD
// replydirname off-by-one. A benign session works identically raw and
// cured; the exploit session runs to completion raw (silently corrupting
// the frame) but the cured binary traps on the bounds check — the paper's
// "we verified that CCured prevents this error".
package main

import (
	"fmt"
	"log"
	"strings"

	"gocured"
	"gocured/internal/corpus"
)

func main() {
	p := corpus.ByName("ftpd")
	prog, err := gocured.Compile("ftpd.c", p.Source, gocured.Options{})
	if err != nil {
		log.Fatal(err)
	}

	show := func(title, stdin string) {
		fmt.Printf("== %s ==\n", title)
		for _, mode := range []gocured.Mode{gocured.ModeRaw, gocured.ModeCured} {
			res, err := prog.Run(mode, gocured.RunOptions{Stdin: []byte(stdin)})
			if err != nil {
				log.Fatal(err)
			}
			status := fmt.Sprintf("exit %d", res.ExitCode)
			if res.Trapped {
				status = fmt.Sprintf("TRAPPED: %s (%s)", res.TrapKind, res.TrapMessage)
			}
			lines := strings.Count(res.Stdout, "\n")
			fmt.Printf("  %-8s -> %s (%d lines of output, %d checks)\n",
				mode, status, lines, res.Checks)
		}
		fmt.Println()
	}

	show("benign session", corpus.FtpdBenignInput)
	show("exploit session (CWD path overflows replydirname)", corpus.FtpdExploitInput)
}
