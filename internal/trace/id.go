package trace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// idSeq disambiguates IDs if the entropy source ever fails: the fallback
// path folds a process-local counter into the ID so two failing reads in
// the same process still produce distinct IDs.
var idSeq atomic.Uint64

// NewID returns a new request trace ID: 16 lowercase hex characters (64
// random bits), the W3C trace-context span-id shape. IDs label one request
// end to end — pipeline spans, flight events, log lines, Prometheus
// exemplars, and the /traces/{id} query all carry the same value.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable on the platforms we
		// run on; degrade to a counter rather than panicking mid-request.
		return fmt.Sprintf("%016x", idSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ValidID reports whether s looks like a trace ID we mint or adopt: 16
// lowercase hex characters (NewID, the W3C span-id shape) or 32 (a W3C
// trace-id adopted from an inbound traceparent header). Inputs from the
// network (client-supplied IDs, /traces/{id} paths) are validated so
// arbitrary strings never become map keys or log fields.
func ValidID(s string) bool {
	if len(s) != 16 && len(s) != 32 {
		return false
	}
	return isLowerHex(s)
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
