package instrument_test

import (
	"testing"

	"gocured/internal/cil"
	"gocured/internal/corpus"
	"gocured/internal/infer"
	"gocured/internal/interp"
)

func checksIn(fn *cil.Func) int {
	n := 0
	cil.WalkInstrs(fn.Body.Stmts, func(i cil.Instr) {
		if _, ok := i.(*cil.Check); ok {
			n++
		}
	})
	return n
}

func TestOptimizerRemovesDuplicateChecks(t *testing.T) {
	// Reading *p twice in one expression emits two null checks; the
	// optimizer keeps one.
	u := build(t, corpus.Prelude+`
int twice(int *p) { return *p + *p; }
int main(void) {
    int x = 21;
    return twice(&x);
}
`, infer.Options{})
	if u.Cured.ChecksEliminated == 0 {
		t.Errorf("expected eliminated checks, got %d", u.Cured.ChecksEliminated)
	}
	fn := u.Cured.Prog.Lookup("twice")
	if got := checksIn(fn); got != 1 {
		t.Errorf("twice retains %d checks, want 1", got)
	}
}

func TestOptimizerKillsOnAssignment(t *testing.T) {
	// p changes between the two dereferences: both checks must stay.
	u := build(t, corpus.Prelude+`
int g1, g2;
int f(int *p) {
    int a = *p;
    p = &g2;
    return a + *p;
}
int main(void) { return f(&g1); }
`, infer.Options{})
	fn := u.Cured.Prog.Lookup("f")
	if got := checksIn(fn); got < 2 {
		t.Errorf("f retains %d checks, want >= 2 (p is reassigned)", got)
	}
}

func TestOptimizerKillsAcrossCalls(t *testing.T) {
	// A call can change the heap cell pp points through; the second check
	// of **pp (memory-reading operand) must survive.
	u := build(t, corpus.Prelude+`
int **pp;
void mutate(void);
int f(void) {
    int a = **pp;
    mutate();
    return a + **pp;
}
int g;
int *inner;
void mutate(void) { inner = &g; }
int main(void) {
    inner = &g;
    pp = &inner;
    return f();
}
`, infer.Options{})
	fn := u.Cured.Prog.Lookup("f")
	// Two deref chains, each needing checks on pp and *pp: at least the
	// memory-dependent ones must re-check after the call.
	got := checksIn(fn)
	if got < 3 {
		t.Errorf("f retains %d checks, want >= 3 (call invalidates memory facts)", got)
	}
	// And the program still runs correctly.
	out, err := u.RunCured(interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trap != nil {
		t.Fatalf("trap: %v", out.Trap)
	}
}

func TestOptimizerPreservesSemanticsOnCorpus(t *testing.T) {
	// The whole-corpus raw-vs-cured test already runs with the optimizer
	// on; here we just confirm it fires meaningfully on a large program.
	p := corpus.ByName("bind")
	u := build(t, p.Source, infer.Options{TrustBadCasts: true})
	if u.Cured.ChecksEliminated == 0 {
		t.Error("optimizer eliminated nothing on bind")
	}
	total := 0
	for _, n := range u.Cured.ChecksInserted {
		total += n
	}
	if u.Cured.ChecksEliminated >= total {
		t.Errorf("eliminated %d of %d checks: too aggressive", u.Cured.ChecksEliminated, total)
	}
}
