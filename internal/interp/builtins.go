package interp

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"gocured/internal/flight"
	"gocured/internal/mem"
)

// builtinFn implements one external library function. Builtins receive fat
// argument values; when running cured they behave like CCured's packaged
// wrappers (checking the metadata before touching memory), and when running
// raw they behave like the real library (no checks; the arena guard is the
// only net).
type builtinFn func(m *Machine, args []Value) Value

type libcState struct {
	hostent  uint32 // interned struct hostent for gethostbyname
	simRecvN uint64
	simSentN uint64
	ioSink   uint64
}

func builtinTable() map[string]builtinFn {
	t := map[string]builtinFn{
		// Allocation.
		"malloc":  bMalloc,
		"calloc":  bCalloc,
		"realloc": bRealloc,
		"free":    bFree,

		// Memory.
		"memcpy":  bMemcpy,
		"memmove": bMemcpy,
		"memset":  bMemset,
		"memcmp":  bMemcmp,

		// Strings.
		"strlen":  bStrlen,
		"strcpy":  bStrcpy,
		"strncpy": bStrncpy,
		"strcat":  bStrcat,
		"strncat": bStrncat,
		"strcmp":  bStrcmp,
		"strncmp": bStrncmp,
		"strchr":  bStrchr,
		"strrchr": bStrrchr,
		"strstr":  bStrstr,
		"strdup":  bStrdup,

		// Stdio.
		"printf":   bPrintf,
		"sprintf":  bSprintf,
		"snprintf": bSnprintf,
		"puts":     bPuts,
		"putchar":  bPutchar,
		"getchar":  bGetchar,

		// Stdlib.
		"atoi":  bAtoi,
		"abs":   bAbs,
		"rand":  bRand,
		"srand": bSrand,
		"exit":  bExit,
		"abort": bAbort,
		"qsort": bQsort,
		"sqrt":  bSqrt,
		"time":  bTime,
		"clock": bTime,

		// Library-compatibility demos (§4).
		"gethostbyname": bGethostbyname,
		"sim_recv":      bSimRecv,
		"sim_send":      bSimSend,

		// Wrapper helpers (§4.1).
		"__ptrof":      bPtrof,
		"__mkptr":      bMkptr,
		"__verify_nul": bVerifyNul,
		"__endof":      bEndof,
	}
	return t
}

func arg(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return Value{}
}

// cured reports whether builtins should enforce wrapper-style checks.
func (m *Machine) curedMode() bool { return m.policy == PolicyCured }

// boundsOf returns the byte budget from v.P to its end bound, or a large
// default when no metadata is available.
func (m *Machine) boundsOf(v Value) uint32 {
	if v.B != 0 && v.E > v.P {
		return v.E - v.P
	}
	if blk := m.mem.BlockAt(v.P); blk != nil {
		return blk.End() - v.P
	}
	return 1 << 20
}

// requireSpan is the wrapper-style precondition: the first n bytes at v
// must be within v's bounds (cured mode only). WILD values carry a base
// but no end; their extent comes from the home block.
func (m *Machine) requireSpan(v Value, n uint32, fn string) {
	if !m.curedMode() {
		return
	}
	if v.P == 0 {
		m.trapf("null", "%s: null pointer argument", fn)
	}
	if v.B == 0 {
		return // SAFE argument: no metadata to validate against
	}
	end := v.E
	if end == 0 {
		blk := m.mem.BlockAt(v.B)
		if blk == nil {
			m.trapf("bounds", "%s: pointer base 0x%x is not a valid area", fn, v.B)
		}
		end = blk.End()
	}
	if v.P < v.B || v.P+n > end {
		m.trapf("bounds", "%s: buffer of %d bytes exceeds pointer bounds [0x%x,0x%x)",
			fn, n, v.B, end)
	}
}

// ---- Allocation ----

func bMalloc(m *Machine, args []Value) Value {
	n := uint32(arg(args, 0).AsInt())
	blk := m.mem.Alloc(n, mem.RegHeap, "malloc")
	blk.Fresh = true
	m.cnt.Allocs++
	m.recEvent(flight.EvAlloc, "malloc", uint64(n))
	return SeqVal(blk.Addr, blk.Addr, blk.End())
}

func bCalloc(m *Machine, args []Value) Value {
	n := uint32(arg(args, 0).AsInt()) * uint32(arg(args, 1).AsInt())
	blk := m.mem.Alloc(n, mem.RegHeap, "calloc")
	blk.Fresh = true
	m.cnt.Allocs++
	m.recEvent(flight.EvAlloc, "calloc", uint64(n))
	return SeqVal(blk.Addr, blk.Addr, blk.End())
}

func bRealloc(m *Machine, args []Value) Value {
	old := arg(args, 0)
	n := uint32(arg(args, 1).AsInt())
	nv := bMalloc(m, []Value{IntVal(int64(n))})
	if old.P != 0 {
		if oldBlk := m.mem.BlockAt(old.P); oldBlk != nil {
			cp := oldBlk.End() - old.P
			if cp > n {
				cp = n
			}
			m.check(m.mem.Copy(nv.P, old.P, cp))
			m.check(m.mem.Free(oldBlk.Addr))
		}
	}
	return nv
}

func bFree(m *Machine, args []Value) Value {
	v := arg(args, 0)
	if v.P == 0 {
		return Value{}
	}
	m.recEvent(flight.EvFree, "free", uint64(v.P))
	m.check(m.mem.Free(v.P))
	return Value{}
}

// ---- Memory ----

func bMemcpy(m *Machine, args []Value) Value {
	dst, src := arg(args, 0), arg(args, 1)
	n := uint32(arg(args, 2).AsInt())
	m.requireSpan(dst, n, "memcpy")
	m.requireSpan(src, n, "memcpy")
	m.check(m.mem.Copy(dst.P, src.P, n))
	return dst
}

func bMemset(m *Machine, args []Value) Value {
	dst := arg(args, 0)
	c := byte(arg(args, 1).AsInt())
	n := uint32(arg(args, 2).AsInt())
	m.requireSpan(dst, n, "memset")
	m.check(m.mem.SetBytes(dst.P, c, n))
	return dst
}

func bMemcmp(m *Machine, args []Value) Value {
	a, b := arg(args, 0), arg(args, 1)
	n := uint32(arg(args, 2).AsInt())
	m.requireSpan(a, n, "memcmp")
	m.requireSpan(b, n, "memcmp")
	ab, err := m.mem.Bytes(a.P, n)
	m.check(err)
	bb, err := m.mem.Bytes(b.P, n)
	m.check(err)
	return IntVal(int64(int32(strings.Compare(string(ab), string(bb)))))
}

// ---- Strings ----

// cstr reads the NUL-terminated string at v, enforcing bounds in cured mode
// (the __verify_nul discipline of the packaged wrappers).
func (m *Machine) cstr(v Value, fn string) string {
	if v.P == 0 {
		m.trapf("null", "%s: null string", fn)
	}
	if m.curedMode() {
		m.verifyNul(v)
	}
	s, err := m.mem.CString(v.P, m.boundsOf(v))
	m.check(err)
	return s
}

func bStrlen(m *Machine, args []Value) Value {
	return IntVal(int64(len(m.cstr(arg(args, 0), "strlen"))))
}

func bStrcpy(m *Machine, args []Value) Value {
	dst, src := arg(args, 0), arg(args, 1)
	s := m.cstr(src, "strcpy")
	m.requireSpan(dst, uint32(len(s))+1, "strcpy")
	for i := 0; i < len(s); i++ {
		m.check(m.mem.WriteInt(dst.P+uint32(i), 1, int64(s[i])))
	}
	m.check(m.mem.WriteInt(dst.P+uint32(len(s)), 1, 0))
	return dst
}

func bStrncpy(m *Machine, args []Value) Value {
	dst, src := arg(args, 0), arg(args, 1)
	n := uint32(arg(args, 2).AsInt())
	s := m.cstr(src, "strncpy")
	m.requireSpan(dst, n, "strncpy")
	for i := uint32(0); i < n; i++ {
		var c int64
		if int(i) < len(s) {
			c = int64(s[i])
		}
		m.check(m.mem.WriteInt(dst.P+i, 1, c))
	}
	return dst
}

func bStrcat(m *Machine, args []Value) Value {
	dst, src := arg(args, 0), arg(args, 1)
	d := m.cstr(dst, "strcat")
	s := m.cstr(src, "strcat")
	m.requireSpan(dst, uint32(len(d)+len(s))+1, "strcat")
	off := dst.P + uint32(len(d))
	for i := 0; i < len(s); i++ {
		m.check(m.mem.WriteInt(off+uint32(i), 1, int64(s[i])))
	}
	m.check(m.mem.WriteInt(off+uint32(len(s)), 1, 0))
	return dst
}

func bStrncat(m *Machine, args []Value) Value {
	dst, src := arg(args, 0), arg(args, 1)
	n := int(arg(args, 2).AsInt())
	d := m.cstr(dst, "strncat")
	s := m.cstr(src, "strncat")
	if len(s) > n {
		s = s[:n]
	}
	m.requireSpan(dst, uint32(len(d)+len(s))+1, "strncat")
	off := dst.P + uint32(len(d))
	for i := 0; i < len(s); i++ {
		m.check(m.mem.WriteInt(off+uint32(i), 1, int64(s[i])))
	}
	m.check(m.mem.WriteInt(off+uint32(len(s)), 1, 0))
	return dst
}

func bStrcmp(m *Machine, args []Value) Value {
	a := m.cstr(arg(args, 0), "strcmp")
	b := m.cstr(arg(args, 1), "strcmp")
	return IntVal(int64(strings.Compare(a, b)))
}

func bStrncmp(m *Machine, args []Value) Value {
	a := m.cstr(arg(args, 0), "strncmp")
	b := m.cstr(arg(args, 1), "strncmp")
	n := int(arg(args, 2).AsInt())
	if len(a) > n {
		a = a[:n]
	}
	if len(b) > n {
		b = b[:n]
	}
	return IntVal(int64(strings.Compare(a, b)))
}

func bStrchr(m *Machine, args []Value) Value {
	v := arg(args, 0)
	s := m.cstr(v, "strchr")
	c := byte(arg(args, 1).AsInt())
	idx := strings.IndexByte(s, c)
	if c == 0 {
		idx = len(s)
	}
	if idx < 0 {
		return Value{K: VPtr}
	}
	out := v
	out.P += uint32(idx)
	return out
}

func bStrrchr(m *Machine, args []Value) Value {
	v := arg(args, 0)
	s := m.cstr(v, "strrchr")
	c := byte(arg(args, 1).AsInt())
	idx := strings.LastIndexByte(s, c)
	if idx < 0 {
		return Value{K: VPtr}
	}
	out := v
	out.P += uint32(idx)
	return out
}

func bStrstr(m *Machine, args []Value) Value {
	v := arg(args, 0)
	hay := m.cstr(v, "strstr")
	needle := m.cstr(arg(args, 1), "strstr")
	idx := strings.Index(hay, needle)
	if idx < 0 {
		return Value{K: VPtr}
	}
	out := v
	out.P += uint32(idx)
	return out
}

func bStrdup(m *Machine, args []Value) Value {
	s := m.cstr(arg(args, 0), "strdup")
	nv := bMalloc(m, []Value{IntVal(int64(len(s) + 1))})
	for i := 0; i < len(s); i++ {
		m.check(m.mem.WriteInt(nv.P+uint32(i), 1, int64(s[i])))
	}
	m.check(m.mem.WriteInt(nv.P+uint32(len(s)), 1, 0))
	return nv
}

// ---- Stdio ----

// formatC renders a C format string with the given varargs.
func (m *Machine) formatC(format string, args []Value) string {
	var b strings.Builder
	ai := 0
	next := func() Value {
		v := arg(args, ai)
		ai++
		return v
	}
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			i++
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		// Flags, width, precision.
		spec := "%"
		for i < len(format) && strings.IndexByte("-+ 0#", format[i]) >= 0 {
			spec += string(format[i])
			i++
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			spec += string(format[i])
			i++
		}
		if i < len(format) && format[i] == '.' {
			spec += "."
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				spec += string(format[i])
				i++
			}
		}
		// Length modifiers are consumed and ignored (ILP32).
		for i < len(format) && (format[i] == 'l' || format[i] == 'h' || format[i] == 'z') {
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++
		switch verb {
		case '%':
			b.WriteByte('%')
		case 'd', 'i':
			fmt.Fprintf(&b, spec+"d", next().AsInt())
		case 'u':
			fmt.Fprintf(&b, spec+"d", uint32(next().AsInt()))
		case 'x':
			fmt.Fprintf(&b, spec+"x", uint32(next().AsInt()))
		case 'X':
			fmt.Fprintf(&b, spec+"X", uint32(next().AsInt()))
		case 'o':
			fmt.Fprintf(&b, spec+"o", uint32(next().AsInt()))
		case 'c':
			b.WriteByte(byte(next().AsInt()))
		case 'f', 'F':
			fmt.Fprintf(&b, spec+"f", next().AsFloat())
		case 'e':
			fmt.Fprintf(&b, spec+"e", next().AsFloat())
		case 'g':
			fmt.Fprintf(&b, spec+"g", next().AsFloat())
		case 'p':
			fmt.Fprintf(&b, "0x%x", uint32(next().AsInt()))
		case 's':
			v := next()
			if v.K != VPtr {
				// The Spec95 bug class found by CCured: %s given a
				// non-pointer. Cured mode traps; raw mode prints garbage.
				if m.curedMode() {
					m.trapf("format", "printf %%s given a non-pointer argument")
				}
				fmt.Fprintf(&b, "<bad %%s arg %d>", v.AsInt())
				continue
			}
			fmt.Fprintf(&b, spec+"s", m.cstr(v, "printf"))
		default:
			b.WriteByte('%')
			b.WriteByte(verb)
		}
	}
	return b.String()
}

func bPrintf(m *Machine, args []Value) Value {
	format := m.cstr(arg(args, 0), "printf")
	s := m.formatC(format, args[1:])
	m.stdout.WriteString(s)
	return IntVal(int64(len(s)))
}

func bSprintf(m *Machine, args []Value) Value {
	dst := arg(args, 0)
	format := m.cstr(arg(args, 1), "sprintf")
	s := m.formatC(format, args[2:])
	m.requireSpan(dst, uint32(len(s))+1, "sprintf")
	for i := 0; i < len(s); i++ {
		m.check(m.mem.WriteInt(dst.P+uint32(i), 1, int64(s[i])))
	}
	m.check(m.mem.WriteInt(dst.P+uint32(len(s)), 1, 0))
	return IntVal(int64(len(s)))
}

func bSnprintf(m *Machine, args []Value) Value {
	dst := arg(args, 0)
	n := int(arg(args, 1).AsInt())
	format := m.cstr(arg(args, 2), "snprintf")
	s := m.formatC(format, args[3:])
	full := len(s)
	if n == 0 {
		return IntVal(int64(full))
	}
	if len(s) > n-1 {
		s = s[:n-1]
	}
	m.requireSpan(dst, uint32(len(s))+1, "snprintf")
	for i := 0; i < len(s); i++ {
		m.check(m.mem.WriteInt(dst.P+uint32(i), 1, int64(s[i])))
	}
	m.check(m.mem.WriteInt(dst.P+uint32(len(s)), 1, 0))
	return IntVal(int64(full))
}

func bPuts(m *Machine, args []Value) Value {
	s := m.cstr(arg(args, 0), "puts")
	m.stdout.WriteString(s)
	m.stdout.WriteByte('\n')
	return IntVal(int64(len(s) + 1))
}

func bPutchar(m *Machine, args []Value) Value {
	c := byte(arg(args, 0).AsInt())
	m.stdout.WriteByte(c)
	return IntVal(int64(c))
}

func bGetchar(m *Machine, args []Value) Value {
	if m.stdinPos >= len(m.stdin) {
		return IntVal(-1)
	}
	c := m.stdin[m.stdinPos]
	m.stdinPos++
	return IntVal(int64(c))
}

// ---- Stdlib ----

func bAtoi(m *Machine, args []Value) Value {
	s := strings.TrimSpace(m.cstr(arg(args, 0), "atoi"))
	end := 0
	if end < len(s) && (s[end] == '-' || s[end] == '+') {
		end++
	}
	for end < len(s) && s[end] >= '0' && s[end] <= '9' {
		end++
	}
	v, _ := strconv.ParseInt(s[:end], 10, 64)
	return IntVal(normInt(v, 4, true))
}

func bAbs(m *Machine, args []Value) Value {
	v := arg(args, 0).AsInt()
	if v < 0 {
		v = -v
	}
	return IntVal(v)
}

func bRand(m *Machine, args []Value) Value {
	m.rngState = m.rngState*6364136223846793005 + 1442695040888963407
	return IntVal(int64((m.rngState >> 33) & 0x7fff))
}

func bSrand(m *Machine, args []Value) Value {
	m.rngState = uint64(arg(args, 0).AsInt())*6364136223846793005 + 1
	return Value{}
}

func bExit(m *Machine, args []Value) Value {
	panic(exitPanic{code: int(arg(args, 0).AsInt())})
}

func bAbort(m *Machine, args []Value) Value {
	m.trapf("abort", "abort() called")
	return Value{}
}

func bSqrt(m *Machine, args []Value) Value {
	return FloatVal(math.Sqrt(arg(args, 0).AsFloat()))
}

func bTime(m *Machine, args []Value) Value {
	m.timeTick++
	return IntVal(m.timeTick)
}

// bQsort sorts n elements of the given size using the comparator function
// pointer — an exercise of calls back from "library" code into cured code.
func bQsort(m *Machine, args []Value) Value {
	base := arg(args, 0)
	n := int(arg(args, 1).AsInt())
	size := uint32(arg(args, 2).AsInt())
	cmp := arg(args, 3)
	m.requireSpan(base, uint32(n)*size, "qsort")
	if n <= 1 {
		return Value{}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	elemPtr := func(i int) Value {
		p := base.P + uint32(i)*size
		v := SeqVal(p, base.B, base.E)
		v.RT = base.RT // preserve run-time type info across the boundary
		return v
	}
	sort.SliceStable(idx, func(a, b int) bool {
		r := m.callPtr(cmp.P, []Value{elemPtr(idx[a]), elemPtr(idx[b])}, nil)
		return r.AsInt() < 0
	})
	// Apply the permutation via a scratch copy.
	scratch := m.mem.Alloc(uint32(n)*size, mem.RegHeap, "qsort-tmp")
	for i, j := range idx {
		m.check(m.mem.Copy(scratch.Addr+uint32(i)*size, base.P+uint32(j)*size, size))
	}
	m.check(m.mem.Copy(base.P, scratch.Addr, uint32(n)*size))
	m.check(m.mem.Free(scratch.Addr))
	return Value{}
}

// ---- Library-compatibility demos ----

// bGethostbyname returns a pointer to a struct hostent laid out exactly as
// the C library would (thin pointers, C offsets):
//
//	struct hostent { char *h_name; char **h_aliases; int h_addrtype; };
//
// In cured mode the builtin also registers metadata for the embedded
// pointers in the shadow structure — the boundary validation step of §4.2.
func bGethostbyname(m *Machine, args []Value) Value {
	name := m.cstr(arg(args, 0), "gethostbyname")
	if m.libcState.hostent == 0 {
		m.libcState.hostent = m.buildHostent(name)
	}
	h := m.libcState.hostent
	return SeqVal(h, h, h+12)
}

func (m *Machine) buildHostent(name string) uint32 {
	writeStr := func(s string) (uint32, uint32) {
		b := m.mem.Alloc(uint32(len(s))+1, mem.RegGlobal, "libc-str")
		for i := 0; i < len(s); i++ {
			m.check(m.mem.WriteInt(b.Addr+uint32(i), 1, int64(s[i])))
		}
		return b.Addr, b.End()
	}
	nameP, nameE := writeStr(name)
	a1, a1e := writeStr("alias0." + name)
	a2, a2e := writeStr("alias1." + name)
	// h_aliases: char*[3] with NULL terminator (thin pointers).
	arr := m.mem.Alloc(12, mem.RegGlobal, "libc-aliases")
	m.check(m.mem.WriteWord(arr.Addr, a1))
	m.check(m.mem.WriteWord(arr.Addr+4, a2))
	m.check(m.mem.WriteWord(arr.Addr+8, 0))
	// struct hostent itself.
	h := m.mem.Alloc(12, mem.RegGlobal, "libc-hostent")
	m.check(m.mem.WriteWord(h.Addr, nameP))
	m.check(m.mem.WriteWord(h.Addr+4, arr.Addr))
	m.check(m.mem.WriteInt(h.Addr+8, 4, 2)) // AF_INET
	if m.curedMode() {
		// Boundary validation: generate metadata for the library-built
		// structure so split-typed reads see correct bounds.
		m.shadowMeta[h.Addr] = metaEntry{b: nameP, e: nameE}
		m.shadowMeta[h.Addr+4] = metaEntry{b: arr.Addr, e: arr.End()}
		m.shadowMeta[arr.Addr] = metaEntry{b: a1, e: a1e}
		m.shadowMeta[arr.Addr+4] = metaEntry{b: a2, e: a2e}
	}
	return h.Addr
}

// ioLatency simulates the cost of a network/disk round trip: a fixed
// syscall cost plus a per-byte wire cost. It is identical for raw and
// cured runs, so I/O-bound workloads (Apache modules, ftpd, the drivers)
// show the paper's ≈1.0 slowdown ratios while CPU-bound code does not.
func (m *Machine) ioLatency(n uint32) {
	m.addCost(2500 + 40*uint64(n))
	work := 4000 + 60*uint64(n)
	s := m.libcState.ioSink | 1
	for i := uint64(0); i < work; i++ {
		s = s*2862933555777941757 + 3037000493
	}
	m.libcState.ioSink = s
}

// bSimRecv fills a buffer with deterministic pseudo-network bytes.
func bSimRecv(m *Machine, args []Value) Value {
	buf := arg(args, 0)
	n := uint32(arg(args, 1).AsInt())
	m.requireSpan(buf, n, "sim_recv")
	m.ioLatency(n)
	for i := uint32(0); i < n; i++ {
		m.libcState.simRecvN++
		c := byte('a' + (m.libcState.simRecvN*131)%26)
		m.check(m.mem.WriteInt(buf.P+i, 1, int64(c)))
	}
	return IntVal(int64(n))
}

// bSimSend consumes a buffer (the "network" write).
func bSimSend(m *Machine, args []Value) Value {
	buf := arg(args, 0)
	n := uint32(arg(args, 1).AsInt())
	m.requireSpan(buf, n, "sim_send")
	m.ioLatency(n)
	bs, err := m.mem.Bytes(buf.P, n)
	m.check(err)
	for _, c := range bs {
		m.libcState.simSentN += uint64(c)
	}
	return IntVal(int64(n))
}

// ---- Wrapper helpers (§4.1) ----

// bPtrof strips metadata for the underlying library call. In this VM the
// "thin pointer" is the same machine word, and the simulated library
// resolves provenance from the block map, so stripping is representational:
// the value is returned unchanged (a real CCured build would pass only the
// p field here).
func bPtrof(m *Machine, args []Value) Value {
	return arg(args, 0)
}

// bMkptr builds a fat pointer for a library result, borrowing the metadata
// of a model pointer (Figure 3's __mkptr(result, str)).
func bMkptr(m *Machine, args []Value) Value {
	p, model := arg(args, 0), arg(args, 1)
	out := model
	out.P = p.P
	return out
}

// bVerifyNul checks NUL-termination within bounds.
func bVerifyNul(m *Machine, args []Value) Value {
	if m.curedMode() {
		m.verifyNul(arg(args, 0))
	}
	return Value{}
}

// bEndof returns the end bound of a fat pointer (for wrappers that need
// the remaining capacity).
func bEndof(m *Machine, args []Value) Value {
	v := arg(args, 0)
	return IntVal(int64(v.E))
}
