package cil

// Dominator tree and natural-loop identification over the CFG, using the
// iterative algorithm of Cooper, Harvey and Kennedy ("A Simple, Fast
// Dominance Algorithm"): walk blocks in reverse postorder intersecting the
// predecessors' dominator sets, represented implicitly by immediate-
// dominator pointers. On the reducible graphs our structured IR produces
// this converges in two passes.

// DomTree holds the immediate-dominator relation of a CFG.
type DomTree struct {
	g *CFG
	// idom[b.ID] is b's immediate dominator (nil for the entry block and
	// for unreachable blocks).
	idom []*BBlock
	// order[b.ID] is b's reverse-postorder index (-1 if unreachable).
	order []int
}

// Dominators computes the dominator tree of g.
func (g *CFG) Dominators() *DomTree {
	rpo := g.ReversePostorder()
	d := &DomTree{
		g:     g,
		idom:  make([]*BBlock, len(g.Blocks)),
		order: make([]int, len(g.Blocks)),
	}
	for i := range d.order {
		d.order[i] = -1
	}
	for i, b := range rpo {
		d.order[b.ID] = i
	}
	// Self-loop on the entry makes the intersection below well-founded.
	d.idom[g.Entry.ID] = g.Entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var ni *BBlock
			for _, p := range b.Preds {
				if d.idom[p.ID] == nil {
					continue // not yet reached
				}
				if ni == nil {
					ni = p
				} else {
					ni = d.intersect(p, ni)
				}
			}
			if ni != nil && d.idom[b.ID] != ni {
				d.idom[b.ID] = ni
				changed = true
			}
		}
	}
	d.idom[g.Entry.ID] = nil
	return d
}

// intersect walks the two dominator chains up to their common ancestor.
func (d *DomTree) intersect(a, b *BBlock) *BBlock {
	for a != b {
		for d.order[a.ID] > d.order[b.ID] {
			a = d.idom[a.ID]
		}
		for d.order[b.ID] > d.order[a.ID] {
			b = d.idom[b.ID]
		}
	}
	return a
}

// Idom returns b's immediate dominator (nil for the entry or unreachable
// blocks).
func (d *DomTree) Idom(b *BBlock) *BBlock { return d.idom[b.ID] }

// Dominates reports whether a dominates b (every path from the entry to b
// passes through a). A block dominates itself.
func (d *DomTree) Dominates(a, b *BBlock) bool {
	if d.order[b.ID] < 0 || d.order[a.ID] < 0 {
		return false // unreachable blocks dominate nothing
	}
	for b != nil {
		if a == b {
			return true
		}
		b = d.idom[b.ID]
	}
	return false
}

// NatLoop is one natural loop: the target of a back edge plus every block
// that can reach the back edge without passing through the header.
type NatLoop struct {
	Head   *BBlock
	Blocks map[*BBlock]bool
}

// NaturalLoops finds every natural loop of g: one per back edge (an edge
// u -> h where h dominates u), merging loops that share a header.
func (g *CFG) NaturalLoops(d *DomTree) []*NatLoop {
	byHead := make(map[*BBlock]*NatLoop)
	var order []*NatLoop
	for _, u := range g.Blocks {
		for _, h := range u.Succs {
			if !d.Dominates(h, u) {
				continue
			}
			l := byHead[h]
			if l == nil {
				l = &NatLoop{Head: h, Blocks: map[*BBlock]bool{h: true}}
				byHead[h] = l
				order = append(order, l)
			}
			// Collect the loop body walking predecessors back from the
			// latch until the header. Unreachable blocks (dead code after a
			// break/return can be a predecessor of a join) are not part of
			// any loop.
			stack := []*BBlock{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[b] || d.order[b.ID] < 0 {
					continue
				}
				l.Blocks[b] = true
				stack = append(stack, b.Preds...)
			}
		}
	}
	return order
}
