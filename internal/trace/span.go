package trace

import "time"

// Span is one timed pipeline phase (parse, sema, lower, infer, instrument,
// run). DurMS is milliseconds, the unit the metrics surface uses.
type Span struct {
	Name  string  `json:"name"`
	DurMS float64 `json:"dur_ms"`
}

// SpanSet accumulates phase spans. The zero value is ready to use; it is
// not safe for concurrent use (phases run sequentially).
type SpanSet struct {
	Spans []Span
}

// Add records a completed span.
func (s *SpanSet) Add(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.Spans = append(s.Spans, Span{Name: name, DurMS: float64(d) / float64(time.Millisecond)})
}

// Do times fn and records it under name.
func (s *SpanSet) Do(name string, fn func()) {
	if s == nil {
		fn()
		return
	}
	t0 := time.Now()
	fn()
	s.Add(name, time.Since(t0))
}
