package pipeline

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Shed reasons, as they appear in errors, metrics, and the shed-by-reason
// Prometheus family.
const (
	// ShedQueueFull: the bounded admission queue was at capacity.
	ShedQueueFull = "queue_full"
	// ShedDeadline: the caller's remaining context deadline could not cover
	// the observed p50 service time, so admitting the job would only burn a
	// queue slot on work the client will abandon.
	ShedDeadline = "deadline"
)

// ShedError reports that admission control rejected a job instead of
// queueing it. RetryAfter is the server's estimate of when capacity will
// exist again (queue depth × observed service rate); ccserve surfaces it
// as a 429 response with a Retry-After header.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("load shed (%s): retry after %v", e.Reason, e.RetryAfter)
}

// DefaultClientWeight is the fair-queue weight of clients without an
// explicit entry in RunnerOptions.ClientWeights.
const DefaultClientWeight = 1

// svcEstimator tracks recent job service times (worker-slot occupancy:
// compile + run, not queue wait) in a fixed ring and answers p50 queries.
// A ring of the last 64 observations adapts quickly when the workload
// shifts and is cheap to snapshot; admission only needs a coarse estimate.
type svcEstimator struct {
	mu   sync.Mutex
	ring [64]time.Duration
	n    int // observations stored (saturates at len(ring))
	idx  int // next write position
}

// svcMinSamples gates the deadline-rejection policy: with fewer
// observations than this the estimator reports no p50 and admission never
// sheds on deadline, so a cold server cannot reject its first clients on
// garbage estimates.
const svcMinSamples = 8

func (s *svcEstimator) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.ring[s.idx] = d
	s.idx = (s.idx + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.mu.Unlock()
}

// p50 returns the median of the recent service times, or 0 while fewer
// than svcMinSamples observations exist.
func (s *svcEstimator) p50() time.Duration {
	s.mu.Lock()
	if s.n < svcMinSamples {
		s.mu.Unlock()
		return 0
	}
	buf := make([]time.Duration, s.n)
	copy(buf, s.ring[:s.n])
	s.mu.Unlock()
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	return buf[len(buf)/2]
}

// waiter is one job waiting in the admission queue.
type waiter struct {
	client *clientQ
	finish float64 // SFQ finish tag
	seq    uint64  // global enqueue order, the deterministic tie-break
	ready  chan struct{}
	// granted/gone are written under the admitter mutex and resolve the
	// race between a grant and a cancellation: exactly one side wins.
	granted bool
	gone    bool
	traceID string
}

// clientQ is one client's FIFO of waiting jobs plus its SFQ state.
type clientQ struct {
	id         string
	weight     float64
	lastFinish float64
	waiters    []*waiter // live waiters in FIFO order (gone ones are popped lazily)
	depth      int       // live (not-gone) waiters
}

// admitter is the Runner's admission scheduler: a bounded queue of jobs
// waiting for worker slots, dispatched by start-time fair queueing (SFQ)
// across clients. Each job costs one virtual unit divided by its client's
// weight; the waiter with the smallest finish tag is granted the next free
// slot, so a client flooding the queue cannot starve the others — its jobs
// just stack up behind ever-larger finish tags while light clients' jobs
// slot in ahead.
type admitter struct {
	mu       sync.Mutex
	slots    int // free worker slots
	workers  int
	maxQueue int // 0 = unbounded (batch mode); ccserve sets a bound
	queued   int // live waiters across all clients
	clients  map[string]*clientQ
	weights  map[string]int
	vtime    float64 // start tag of the most recently dispatched job
	seq      uint64
	svc      svcEstimator
	m        *metrics
}

func newAdmitter(workers, maxQueue int, weights map[string]int, m *metrics) *admitter {
	return &admitter{
		slots:    workers,
		workers:  workers,
		maxQueue: maxQueue,
		clients:  make(map[string]*clientQ),
		weights:  weights,
		m:        m,
	}
}

func (a *admitter) clientLocked(id string) *clientQ {
	c := a.clients[id]
	if c == nil {
		w := a.weights[id]
		if w <= 0 {
			w = DefaultClientWeight
		}
		c = &clientQ{id: id, weight: float64(w)}
		a.clients[id] = c
	}
	return c
}

// retryAfterLocked estimates when a shed client should come back: the time
// the pool needs to drain the current queue plus one job, at the observed
// p50 service time per worker. Without an estimate (cold server) it falls
// back to one second — long enough to matter, short enough to retry soon.
func (a *admitter) retryAfterLocked() time.Duration {
	p50 := a.svc.p50()
	if p50 <= 0 {
		return time.Second
	}
	d := time.Duration(float64(a.queued+1) / float64(a.workers) * float64(p50))
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// RetryAfter estimates the current backoff hint (exposed for ccserve's
// Retry-After header on non-shed errors and for introspection).
func (a *admitter) RetryAfter() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retryAfterLocked()
}

// admit blocks until the job holds a worker slot, the context is
// cancelled, or admission control sheds it. On success the caller MUST
// release() the slot when execution finishes. The returned duration is the
// queue wait.
func (a *admitter) admit(ctx context.Context, clientID, traceID string) (time.Duration, error) {
	enq := time.Now()
	a.mu.Lock()
	// Fast path: a free slot and an empty queue — no policy applies.
	if a.slots > 0 && a.queued == 0 {
		a.slots--
		a.mu.Unlock()
		a.m.queueAdmitted(1, 0, traceID, false)
		return 0, nil
	}
	// Shed before queueing: a rejected job never occupies a slot in the
	// bounded queue and never appears in the queue-depth gauge.
	if a.maxQueue > 0 && a.queued >= a.maxQueue {
		err := &ShedError{Reason: ShedQueueFull, RetryAfter: a.retryAfterLocked()}
		a.mu.Unlock()
		a.m.jobShed(ShedQueueFull, traceID)
		return 0, err
	}
	if dl, ok := ctx.Deadline(); ok {
		if p50 := a.svc.p50(); p50 > 0 && time.Until(dl) < p50 {
			err := &ShedError{Reason: ShedDeadline, RetryAfter: a.retryAfterLocked()}
			a.mu.Unlock()
			a.m.jobShed(ShedDeadline, traceID)
			return 0, err
		}
	}
	c := a.clientLocked(clientID)
	start := a.vtime
	if c.lastFinish > start {
		start = c.lastFinish
	}
	w := &waiter{client: c, finish: start + 1/c.weight, seq: a.seq, ready: make(chan struct{}), traceID: traceID}
	a.seq++
	c.lastFinish = w.finish
	c.waiters = append(c.waiters, w)
	c.depth++
	a.queued++
	depth := int64(a.queued)
	// A slot may be free with a non-empty queue (it was just released and
	// granted us, or cancellations emptied the queue out from under a
	// release); dispatch now so the queue never idles with capacity free.
	a.dispatchLocked()
	a.mu.Unlock()
	a.m.queueEnter()

	select {
	case <-w.ready:
		wait := time.Since(enq)
		a.m.queueAdmitted(depth, wait, traceID, true)
		return wait, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced our cancellation and won a slot for us; we are
			// not going to use it, so hand it to the next waiter (or free it).
			a.slots++
			a.dispatchLocked()
			a.mu.Unlock()
			a.m.queueCancelled()
			return 0, ctx.Err()
		}
		w.gone = true
		w.client.depth--
		a.queued--
		a.mu.Unlock()
		a.m.queueCancelled()
		return 0, ctx.Err()
	}
}

// dispatchLocked grants free slots to waiting jobs, smallest SFQ finish
// tag first (ties broken by enqueue order so dispatch is deterministic).
func (a *admitter) dispatchLocked() {
	for a.slots > 0 {
		var best *clientQ
		for _, c := range a.clients {
			// Drop cancelled waiters from the head lazily; their queue
			// accounting was already reversed at cancellation.
			for len(c.waiters) > 0 && c.waiters[0].gone {
				c.waiters = c.waiters[1:]
			}
			if len(c.waiters) == 0 {
				continue
			}
			h := c.waiters[0]
			if best == nil || h.finish < best.waiters[0].finish ||
				(h.finish == best.waiters[0].finish && h.seq < best.waiters[0].seq) {
				best = c
			}
		}
		if best == nil {
			return
		}
		w := best.waiters[0]
		best.waiters = best.waiters[1:]
		best.depth--
		a.queued--
		a.slots--
		w.granted = true
		a.vtime = w.finish - 1/best.weight
		close(w.ready)
		if len(best.waiters) == 0 && best.depth == 0 {
			// Idle clients are forgotten so the map cannot grow without
			// bound under per-connection client IDs. SFQ start tags are
			// max(vtime, lastFinish), so losing a stale lastFinish below
			// vtime changes nothing.
			delete(a.clients, best.id)
		}
	}
}

// release returns a worker slot and hands it to the next waiter, if any.
// d is the job's service time (slot occupancy), fed to the estimator that
// drives deadline rejection and Retry-After.
func (a *admitter) release(d time.Duration) {
	a.svc.observe(d)
	a.mu.Lock()
	a.slots++
	a.dispatchLocked()
	a.mu.Unlock()
}

// ClientDepths snapshots the live per-client queue depths (only clients
// with waiting jobs appear).
func (a *admitter) ClientDepths() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.clients))
	for id, c := range a.clients {
		if c.depth > 0 {
			out[id] = c.depth
		}
	}
	return out
}
