package interp_test

import (
	"encoding/json"
	"strings"
	"testing"

	"gocured/internal/cil"
	"gocured/internal/core"
	"gocured/internal/infer"
	"gocured/internal/interp"
)

// VM-specific accounting semantics: the step limit and the back-edge
// charge on an empty infinite loop must match the tree walker exactly —
// this is the loop shape where the bytecode compiler's fused OpJumpBack
// (back-edge charge folded into the loop-tail jump) carries all of the
// accounting.

func buildOrDie(t *testing.T, src string) *core.Unit {
	t.Helper()
	u, err := core.Build("backend.c", src, infer.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return u
}

func TestVMStepLimitOnEmptyLoop(t *testing.T) {
	u := buildOrDie(t, `int main(void) { for (;;) {} return 0; }`)
	const limit = 1000

	vm, err := u.RunCured(interp.Config{StepLimit: limit, Backend: interp.BackendVM})
	if err != nil {
		t.Fatalf("run vm: %v", err)
	}
	if vm.Trap == nil || vm.Trap.Kind != "timeout" {
		t.Fatalf("vm: want timeout trap, got %+v", vm.Trap)
	}
	if !strings.Contains(vm.Trap.Msg, "step limit (1000) exceeded") {
		t.Fatalf("vm trap message = %q", vm.Trap.Msg)
	}
	// The trap fires on the first step past the limit, so the counter
	// reads exactly limit+1 — back edges count against the limit.
	if vm.Counters.Steps != limit+1 {
		t.Fatalf("vm steps = %d, want %d", vm.Counters.Steps, limit+1)
	}
	// Back edges charge no simulated cycles (they are accounting, not
	// work), so almost all of the run's steps contribute no cost.
	if vm.Counters.Cost >= vm.Counters.Steps {
		t.Fatalf("back edges charged cost: cost %d >= steps %d", vm.Counters.Cost, vm.Counters.Steps)
	}

	tree, err := u.RunCured(interp.Config{StepLimit: limit, Backend: interp.BackendTree})
	if err != nil {
		t.Fatalf("run tree: %v", err)
	}
	if tree.Counters.Steps != vm.Counters.Steps || tree.Counters.Cost != vm.Counters.Cost {
		t.Fatalf("backends diverge on the empty loop: tree steps/cost %d/%d, vm %d/%d",
			tree.Counters.Steps, tree.Counters.Cost, vm.Counters.Steps, vm.Counters.Cost)
	}
	if tree.Trap == nil || tree.Trap.Kind != vm.Trap.Kind || tree.Trap.Msg != vm.Trap.Msg ||
		tree.Trap.Pos != vm.Trap.Pos {
		t.Fatalf("backends diverge on the timeout trap:\ntree: %+v\nvm:   %+v", tree.Trap, vm.Trap)
	}
}

// TestKindCountsJSONShape pins the external encoding of the per-kind check
// counters: KindCounts is a dense array internally (one add per check, no
// map hash), but /metrics and JSON consumers must keep seeing the map
// shape the old map-typed field produced — kind names as keys, zero kinds
// omitted, deterministic CheckKind order.
func TestKindCountsJSONShape(t *testing.T) {
	var k interp.KindCounts
	k[cil.CheckNull] = 3
	k[cil.CheckSeq] = 7
	k[cil.CheckIndex] = 1

	data, err := json.Marshal(k)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"null":3,"seq":7,"index":1}`
	if string(data) != want {
		t.Fatalf("encoding = %s, want %s", data, want)
	}

	var back interp.KindCounts
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != k {
		t.Fatalf("round trip: %v != %v", back, k)
	}
	if back.Total() != 11 {
		t.Fatalf("total = %d, want 11", back.Total())
	}

	if err := json.Unmarshal([]byte(`{"no-such-kind":1}`), &back); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// BenchmarkDeepRecursion demonstrates activation-record pooling: a deep
// call chain reuses frames from the Machine's pool instead of allocating
// one record (plus, on the VM, one register file) per call.
func BenchmarkDeepRecursion(b *testing.B) {
	const src = `
int rec(int n) {
    if (n) return rec(n - 1) + 1;
    return 0;
}
int main(void) { return rec(400); }
`
	u, err := core.Build("recur.c", src, infer.Options{})
	if err != nil {
		b.Fatalf("build: %v", err)
	}
	for _, backend := range []interp.Backend{interp.BackendVM, interp.BackendTree} {
		b.Run(backend.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := u.RunCured(interp.Config{Backend: backend})
				if err != nil {
					b.Fatal(err)
				}
				if out.ExitCode != 400 {
					b.Fatalf("exit code %d, want 400", out.ExitCode)
				}
			}
		})
	}
}
