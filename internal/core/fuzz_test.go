package core_test

import (
	"os"
	"strings"
	"testing"

	"gocured/internal/core"
	"gocured/internal/infer"
)

// FuzzCompile pushes arbitrary input through the whole build pipeline —
// parse, sema, lower, inference, curing, optimization — asserting it never
// panics. Bad programs must be rejected with an error carrying
// diagnostics, not a crash.
func FuzzCompile(f *testing.F) {
	if data, err := os.ReadFile("../../examples/explain/wild.c"); err == nil {
		f.Add(string(data))
	}
	for _, path := range []string{
		"../../examples/quickstart/main.go",
		"../../examples/oop/main.go",
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		s := string(data)
		if i := strings.Index(s, "const src = `"); i >= 0 {
			s = s[i+len("const src = `"):]
			if j := strings.Index(s, "`"); j >= 0 {
				f.Add(s[:j])
			}
		}
	}
	f.Add(`int main(void) { int a[4]; return a[4]; }`)
	f.Add(`struct S; int f(struct S *p) { return *(int *)p; }`)
	f.Add(`int main(void) { void *p = 0; return *(int *)p; }`)
	f.Fuzz(func(t *testing.T, src string) {
		// Both optimizer settings must survive any input that builds.
		_, _ = core.Build("fuzz.c", src, infer.Options{})
		_, _ = core.Build("fuzz.c", src, infer.Options{NoOptimize: true})
	})
}
