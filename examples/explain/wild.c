/* Pointers forced WILD by a bad cast: the input for ccured -explain's
 * blame-chain golden test. The cast on line 12 converts an int* into an
 * int** — nothing physical subtyping can verify — so both sides of the
 * cast go WILD. The copy into jp and the identity cast into kp then
 * inherit the wildness through ordinary data flow, so their blame chains
 * walk back through the assignments to the original bad cast. */
extern int printf(char *fmt, ...);

int main(void) {
    int v = 7;
    int *ip = &v;
    int **pp = (int **)ip;  /* bad cast: an int * is not an int ** */
    int *jp = ip;           /* jp catches the infection by assignment */
    int *kp = (int *)jp;    /* an innocent cast that went WILD */
    if (pp && kp) { }
    printf("%d\n", v);
    return 0;
}
