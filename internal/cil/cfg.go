package cil

// Basic-block control-flow graph over the structured IR. The statement tree
// (If/Loop/Switch/Break/Continue/Return) stays the single source of truth —
// blocks reference the *SInstr statements of the tree, so a pass that decides
// "delete this check" on the CFG applies the decision by filtering the tree.
//
// Shape of the translation:
//
//   - If: the condition ends the current block; both arms converge on a join
//     block (a missing else arm is an edge straight to the join).
//   - Loop: entry edge to a header block; the body falls through to the Post
//     block (when present) and back to the header; Break edges to the block
//     after the loop, Continue to Post (or the header).
//   - Switch: the dispatch block has an edge to every case head (plus the
//     join when there is no default); case bodies fall through to the next
//     case head, C-style; Break edges to the join.
//   - Return: edge to the function exit block.
//
// Statements after a Break/Continue/Return accumulate in a fresh block with
// no predecessors; such unreachable blocks are kept in Blocks but are not
// visited by ReversePostorder, so dataflow passes skip them.

// BBlock is one basic block: a maximal run of instructions with one entry
// and one exit.
type BBlock struct {
	ID     int
	Instrs []*SInstr
	Succs  []*BBlock
	Preds  []*BBlock
}

// CFG is the control-flow graph of one function.
type CFG struct {
	Fn     *Func
	Entry  *BBlock
	Exit   *BBlock
	Blocks []*BBlock
}

// BuildCFG constructs the control-flow graph of fn.
func BuildCFG(fn *Func) *CFG {
	b := &cfgBuilder{g: &CFG{Fn: fn}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	last := b.stmts(fn.Body.Stmts, b.g.Entry, nil, nil)
	edge(last, b.g.Exit) // falling off the end returns
	return b.g
}

type cfgBuilder struct {
	g *CFG
}

func (b *cfgBuilder) newBlock() *BBlock {
	blk := &BBlock{ID: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func edge(from, to *BBlock) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// stmts translates a statement list starting in cur; brk and cont are the
// targets of Break and Continue in this context (nil at the top level).
// It returns the block where control continues afterwards.
func (b *cfgBuilder) stmts(list []Stmt, cur *BBlock, brk, cont *BBlock) *BBlock {
	for _, s := range list {
		switch st := s.(type) {
		case *SInstr:
			cur.Instrs = append(cur.Instrs, st)
		case *Block:
			cur = b.stmts(st.Stmts, cur, brk, cont)
		case *If:
			thenB := b.newBlock()
			edge(cur, thenB)
			thenEnd := b.stmts(st.Then.Stmts, thenB, brk, cont)
			join := b.newBlock()
			if st.Else != nil {
				elseB := b.newBlock()
				edge(cur, elseB)
				elseEnd := b.stmts(st.Else.Stmts, elseB, brk, cont)
				edge(elseEnd, join)
			} else {
				edge(cur, join)
			}
			edge(thenEnd, join)
			cur = join
		case *Loop:
			header := b.newBlock()
			edge(cur, header)
			after := b.newBlock()
			var postHead *BBlock
			backTo := header
			if st.Post != nil {
				postHead = b.newBlock()
				backTo = postHead
			}
			bodyEnd := b.stmts(st.Body.Stmts, header, after, backTo)
			if st.Post != nil {
				edge(bodyEnd, postHead)
				// A Break inside Post (the do-while trailing test) exits the
				// loop; Continue cannot occur there.
				postEnd := b.stmts(st.Post.Stmts, postHead, after, header)
				edge(postEnd, header)
			} else {
				edge(bodyEnd, header)
			}
			cur = after
		case *Switch:
			join := b.newBlock()
			heads := make([]*BBlock, len(st.Cases))
			hasDefault := false
			for i, cs := range st.Cases {
				heads[i] = b.newBlock()
				edge(cur, heads[i])
				if cs.IsDefault {
					hasDefault = true
				}
			}
			if !hasDefault {
				edge(cur, join)
			}
			for i, cs := range st.Cases {
				// Break binds to the switch; Continue still binds to the
				// enclosing loop (C semantics).
				end := b.stmts(cs.Body, heads[i], join, cont)
				if i+1 < len(heads) {
					edge(end, heads[i+1]) // fallthrough
				} else {
					edge(end, join)
				}
			}
			cur = join
		case *Break:
			if brk != nil {
				edge(cur, brk)
			}
			cur = b.newBlock() // unreachable continuation
		case *Continue:
			if cont != nil {
				edge(cur, cont)
			}
			cur = b.newBlock()
		case *Return:
			edge(cur, b.g.Exit)
			cur = b.newBlock()
		}
	}
	return cur
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder of a depth-first walk (every block after all its non-back-edge
// predecessors) — the canonical iteration order for forward dataflow.
func (g *CFG) ReversePostorder() []*BBlock {
	seen := make([]bool, len(g.Blocks))
	var post []*BBlock
	var dfs func(*BBlock)
	dfs = func(b *BBlock) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
