package pipeline

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"gocured/internal/store"
)

// WritePrometheus renders a Metrics snapshot in the classic Prometheus
// text exposition format (version 0.0.4): one # HELP / # TYPE pair per
// family, counters and gauges as single samples, histograms as cumulative
// le-labelled buckets plus _sum and _count. The 0.0.4 parser accepts only
// an optional timestamp after a sample value, so this dialect carries no
// exemplars; scrapers that negotiate OpenMetrics get them via
// WriteOpenMetrics.
func WritePrometheus(w io.Writer, m Metrics) {
	writeExposition(w, m, false)
}

// WriteOpenMetrics renders the same snapshot in the OpenMetrics text
// format (version 1.0.0): counter families are declared without their
// _total suffix, the exposition ends with `# EOF`, and histogram bucket
// lines carry exemplars (`# {trace_id="..."} value`) linking the bucket to
// the trace of its most recent observation, so a p999 bucket on a
// dashboard is one click from GET /traces/{id}.
func WriteOpenMetrics(w io.Writer, m Metrics) {
	writeExposition(w, m, true)
	fmt.Fprintln(w, "# EOF")
}

// promFamily buffers one metric family (HELP/TYPE plus samples) so the
// exposition can be emitted in sorted family-name order regardless of the
// order the snapshot is walked in. Deterministic ordering keeps scrape
// diffs stable and is pinned by test.
type promFamily struct {
	name string
	buf  bytes.Buffer
}

func writeExposition(w io.Writer, m Metrics, om bool) {
	var fams []*promFamily
	family := func(name string) *promFamily {
		f := &promFamily{name: name}
		fams = append(fams, f)
		return f
	}
	gauge := func(name, help string, v float64) {
		f := family(name)
		fmt.Fprintf(&f.buf, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtFloat(v))
	}
	gaugeFamily := func(name, help string) *promFamily {
		f := family(name)
		fmt.Fprintf(&f.buf, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		return f
	}
	// counterFamily declares a counter family: OpenMetrics names the family
	// without the _total sample suffix, the classic format repeats it.
	counterFamily := func(name, help string) *promFamily {
		fam := name
		if om {
			fam = strings.TrimSuffix(name, "_total")
		}
		f := family(fam)
		fmt.Fprintf(&f.buf, "# HELP %s %s\n# TYPE %s counter\n", fam, help, fam)
		return f
	}
	counter := func(name, help string, v uint64) {
		f := counterFamily(name, help)
		fmt.Fprintf(&f.buf, "%s %d\n", name, v)
	}
	histFamily := func(name, help string) *promFamily {
		f := family(name)
		fmt.Fprintf(&f.buf, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		return f
	}

	{
		f := family("gocured_build_info")
		fmt.Fprintf(&f.buf, "# HELP gocured_build_info Build metadata (constant 1; labels carry the values).\n"+
			"# TYPE gocured_build_info gauge\n"+
			"gocured_build_info{version=%q,go_version=%q,optimizer=%q} 1\n",
			m.Build.Version, m.Build.GoVersion, m.Build.Optimizer)
	}

	gauge("gocured_workers", "Size of the job worker pool.", float64(m.Workers))
	gauge("gocured_jobs_in_flight", "Jobs currently executing.", float64(m.JobsInFlight))
	gauge("gocured_queue_depth", "Jobs currently waiting for a worker slot.", float64(m.QueueDepthNow))
	counter("gocured_jobs_run_total", "Jobs completed (including failures).", m.JobsRun)
	counter("gocured_jobs_failed_total", "Jobs that ended in an error.", m.JobsFailed)
	counter("gocured_jobs_panicked_total", "Jobs isolated after a panic.", m.JobsPanicked)
	counter("gocured_jobs_timed_out_total", "Jobs abandoned on timeout.", m.JobsTimedOut)
	counter("gocured_runs_executed_total", "Cured/raw program executions.", m.RunsExecuted)

	counter("gocured_traps_total", "Executions stopped by a memory-safety trap.", m.Traps)
	if len(m.TrapsByKind) > 0 {
		name := "gocured_traps_by_kind_total"
		f := counterFamily(name, "Traps by check kind.")
		kinds := make([]string, 0, len(m.TrapsByKind))
		for k := range m.TrapsByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(&f.buf, "%s{kind=%q} %d\n", name, k, m.TrapsByKind[k])
		}
	}

	// Admission-control families are always exposed (zero before any
	// decision) so overload dashboards and the serve-overload CI gate can
	// rely on their presence. The shed counter carries an exemplar in the
	// OpenMetrics dialect: the trace ID of the most recently rejected job.
	gauge("gocured_queue_limit", "Configured admission-queue bound (0 = unbounded).", float64(m.QueueLimit))
	counter("gocured_admitted_total", "Jobs granted a worker slot by admission control.", m.Admitted)
	{
		f := counterFamily("gocured_shed_total", "Jobs rejected by admission control without queueing.")
		fmt.Fprintf(&f.buf, "gocured_shed_total %d", m.Shed)
		if om && m.ShedExemplar != nil {
			fmt.Fprintf(&f.buf, " # {trace_id=%q} %s", m.ShedExemplar.TraceID, fmtFloat(m.ShedExemplar.ValueMS))
		}
		fmt.Fprintln(&f.buf)
	}
	{
		f := counterFamily("gocured_shed_by_reason_total", "Admission rejections by reason.")
		for _, reason := range []string{ShedDeadline, ShedQueueFull} {
			fmt.Fprintf(&f.buf, "gocured_shed_by_reason_total{reason=%q} %d\n", reason, m.ShedByReason[reason])
		}
	}
	counter("gocured_coalesced_total", "Jobs served by joining an identical in-flight job.", m.Coalesced)
	counter("gocured_traceparent_malformed_total", "Inbound W3C traceparent headers discarded as malformed.", m.TraceparentMalformed)
	if len(m.ClientQueueDepths) > 0 {
		name := "gocured_client_queue_depth"
		f := gaugeFamily(name, "Waiting jobs per fair-queue client.")
		ids := make([]string, 0, len(m.ClientQueueDepths))
		for id := range m.ClientQueueDepths {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(&f.buf, "%s{client=%q} %d\n", name, id, m.ClientQueueDepths[id])
		}
	}

	// SLO burn-rate gauges (present only when a History annotated the
	// snapshot): one sample per objective per window, labelled with the
	// window's nominal duration, plus a numeric alert-state gauge
	// (0 ok, 1 warn, 2 page) for alerting rules that want a single series.
	if len(m.SLOs) > 0 {
		bf := gaugeFamily("gocured_slo_burn_rate", "Error-budget burn rate per SLO and look-back window.")
		sf := gaugeFamily("gocured_slo_state", "SLO alert state: 0 ok, 1 warn, 2 page.")
		for _, s := range m.SLOs {
			for _, wb := range s.Windows {
				win := (time.Duration(wb.WindowMS) * time.Millisecond).String()
				fmt.Fprintf(&bf.buf, "gocured_slo_burn_rate{slo=%q,window=%q} %s\n", s.Name, win, fmtFloat(wb.Burn))
			}
			state := 0
			switch s.State {
			case SLOStateWarn:
				state = 1
			case SLOStatePage:
				state = 2
			}
			fmt.Fprintf(&sf.buf, "gocured_slo_state{slo=%q} %d\n", s.Name, state)
		}
	}

	gauge("gocured_cache_entries", "Live compile-cache entries.", float64(m.Cache.Entries))
	counter("gocured_cache_hits_total", "Compile-cache hits.", m.Cache.Hits)
	counter("gocured_cache_misses_total", "Compile-cache misses.", m.Cache.Misses)
	counter("gocured_cache_evictions_total", "Compile-cache LRU evictions.", m.Cache.Evictions)

	// Artifact-store families are always exposed (zero without a store) so
	// dashboards and smoke checks can rely on their presence.
	var st store.Stats
	if m.Store != nil {
		st = *m.Store
	}
	counter("gocured_store_hits_total", "Artifact-store chunk hits.", uint64(st.Hits))
	counter("gocured_store_misses_total", "Artifact-store chunk misses.", uint64(st.Misses))
	counter("gocured_store_writes_total", "Artifact-store chunks written.", uint64(st.Writes))
	counter("gocured_store_corrupt_dropped_total", "Corrupt chunks detected and dropped on read.", uint64(st.CorruptDropped))
	gauge("gocured_store_chunks", "Chunks resident in the artifact store.", float64(st.Chunks))
	gauge("gocured_store_bytes", "Bytes resident in the artifact store.", float64(st.Bytes))
	counter("gocured_funcs_recured_total", "Functions whose constraints were re-collected.", m.FuncsRecured)
	counter("gocured_funcs_loaded_total", "Functions replayed from stored summaries.", m.FuncsLoaded)

	// Request-trace buffer families (zero without a buffer); Dropped is the
	// one the load-harness gate watches.
	var added, evicted, dropped uint64
	var live int
	if m.Traces != nil {
		added, evicted, dropped, live = m.Traces.Added, m.Traces.Evicted, m.Traces.Dropped, m.Traces.Live
	}
	counter("gocured_traces_added_total", "Request traces recorded into the trace buffer.", added)
	counter("gocured_traces_evicted_total", "Request traces evicted from the bounded trace buffer.", evicted)
	counter("gocured_traces_dropped_total", "Malformed request traces refused by the trace buffer (expected 0).", dropped)
	gauge("gocured_traces_live", "Request traces currently queryable via /traces/{id}.", float64(live))

	hist := func(name, help string, h Histogram) {
		f := histFamily(name, help)
		writeHistogramSamples(&f.buf, name, "", h, om)
	}
	hist("gocured_e2e_wall_ms", "End-to-end job latency (queue wait + compile/cache + run) in milliseconds.", m.E2EWall)
	hist("gocured_queue_wait_ms", "Time jobs waited for a worker slot in milliseconds.", m.QueueWait)
	hist("gocured_queue_depth_hist", "Waiting-job count observed at each enqueue (dimensionless log buckets).", m.QueueDepth)
	hist("gocured_compile_wall_ms", "Compile wall time in milliseconds.", m.CompileWall)
	hist("gocured_run_wall_ms", "Run wall time in milliseconds.", m.RunWall)

	if len(m.Phases) > 0 {
		name := "gocured_phase_ms"
		f := histFamily(name, "Per-phase compile durations in milliseconds.")
		for _, p := range m.Phases {
			writeHistogramSamples(&f.buf, name, fmt.Sprintf("phase=%q,", p.Phase), p.Hist, om)
		}
	}

	// Emit families in lexicographic name order. The walk above groups by
	// subsystem for readability of this source file; sorting here is what
	// consumers see, and the stable sort keeps any accidental duplicate
	// family names in walk order rather than flapping.
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		w.Write(f.buf.Bytes())
	}
}

// writeHistogramSamples renders one labelled histogram's cumulative bucket
// lines over the canonical log-bucket bounds (sparse snapshots are summed
// back up while walking the bound list), then _sum and _count. labels is
// either empty or a `k="v",` prefix spliced before the le label. In the
// OpenMetrics dialect (om), bucket lines whose bucket has an exemplar get
// the exemplar suffix; the classic 0.0.4 parser rejects anything after the
// value, so exemplars are suppressed there.
func writeHistogramSamples(w io.Writer, name, labels string, h Histogram, om bool) {
	type bk struct {
		count    uint64
		exemplar *Exemplar
	}
	byLe := make(map[float64]bk, len(h.Buckets))
	var overflow bk
	for _, b := range h.Buckets {
		if b.LeMS > 0 {
			byLe[b.LeMS] = bk{b.Count, b.Exemplar}
		} else {
			overflow = bk{b.Count, b.Exemplar}
		}
	}
	var cum uint64
	for _, le := range logBoundsMS {
		b := byLe[le]
		cum += b.count
		// Keep the exposition compact: only bound lines that close a
		// non-empty bucket (or the first/last bound) are emitted. Partial
		// bucket lists are legal in the text format, and cumulative counts
		// stay exact because skipped buckets are empty by construction.
		if b.count == 0 && le != logBoundsMS[0] && le != logBoundsMS[logBucketCount-1] {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d", name, labels, fmtFloat(le), cum)
		if om && b.exemplar != nil {
			fmt.Fprintf(w, " # {trace_id=%q} %s", b.exemplar.TraceID, fmtFloat(b.exemplar.ValueMS))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d", name, labels, h.Count)
	if om && overflow.exemplar != nil {
		fmt.Fprintf(w, " # {trace_id=%q} %s", overflow.exemplar.TraceID, fmtFloat(overflow.exemplar.ValueMS))
	}
	fmt.Fprintln(w)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(h.SumMS))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels[:len(labels)-1], fmtFloat(h.SumMS))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels[:len(labels)-1], h.Count)
	}
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
