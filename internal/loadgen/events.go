package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
)

// EventStats summarises a tail of GET /events taken during a load run.
// SeqGaps counts discontinuities in the event sequence numbers — each gap
// means the bus dropped events for this subscriber (it fell behind), which
// the CI gate asserts never happens for a keeping-up consumer.
type EventStats struct {
	Seen    int    `json:"seen"`
	SeqGaps int    `json:"seq_gaps"`
	Dropped uint64 `json:"dropped_events"`
	Err     string `json:"error,omitempty"`
}

// EventWatcher tails the server's SSE event stream on a goroutine and
// verifies sequence continuity. Start it before driving load, Stop it
// after; Stats is valid once Stop returns.
type EventWatcher struct {
	cancel context.CancelFunc
	done   chan struct{}

	mu    sync.Mutex
	stats EventStats
}

// WatchEvents connects to baseURL/events and starts consuming. The
// returned watcher must be stopped with Stop.
func WatchEvents(ctx context.Context, client *http.Client, baseURL string) *EventWatcher {
	if client == nil {
		// No overall timeout: the stream stays open until Stop cancels it.
		client = &http.Client{}
	}
	wctx, cancel := context.WithCancel(ctx)
	w := &EventWatcher{cancel: cancel, done: make(chan struct{})}
	go w.run(wctx, client, baseURL)
	return w
}

func (w *EventWatcher) run(ctx context.Context, client *http.Client, baseURL string) {
	defer close(w.done)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/events", nil)
	if err != nil {
		w.fail(err.Error())
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		w.fail(err.Error())
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.fail("GET /events: status " + resp.Status)
		return
	}

	var lastSeq uint64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			continue
		}
		w.mu.Lock()
		w.stats.Seen++
		if lastSeq != 0 && ev.Seq > lastSeq+1 {
			w.stats.SeqGaps++
			w.stats.Dropped += ev.Seq - lastSeq - 1
		}
		w.mu.Unlock()
		lastSeq = ev.Seq
	}
	// A scan error after cancellation is just the stream closing.
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		w.fail(err.Error())
	}
}

func (w *EventWatcher) fail(msg string) {
	w.mu.Lock()
	w.stats.Err = msg
	w.mu.Unlock()
}

// Stop tears down the stream and returns the accumulated stats.
func (w *EventWatcher) Stop() EventStats {
	w.cancel()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}
