// ccload is a load harness for ccserve: it drives a weighted mix of
// cure / cache-hit / run / edit-recure traffic at the server, sweeps
// concurrency levels to chart a saturation curve, and reports latency
// quantiles (p50/p99/p999) per level and per traffic class.
//
// Beyond raw latency it verifies the observability plumbing end to end:
//
//   - it samples the slowest cache-miss request of the sweep and fetches
//     GET /traces/{id}, requiring a ValidateTrace-clean Chrome trace whose
//     spans cover queue wait, the cache tier, and every compile phase,
//     all stamped with the matching trace ID;
//   - it tails GET /events for the whole run and counts sequence gaps
//     (each gap = dropped events for a keeping-up consumer);
//   - it reads GET /metrics afterwards and extracts the trace-buffer
//     drop counter;
//   - every request carries a freshly minted W3C traceparent header, and
//     the response's Traceparent echo must return the same trace-id — a
//     mismatch anywhere in the run is a gate violation;
//   - with -burn-gate it reads the server's SLO burn-rate states: no SLO
//     may page after the in-capacity sweep, and (with -overload) the shed
//     burst must trip the burn alert and clear again within
//     -burn-recovery-wait once load stops;
//   - with -history-out it archives the server's /metrics/history time
//     series as a JSON artifact.
//
// With -gate the process exits non-zero if the p99 SLO is violated at the
// gated level, the trace check fails, any request errored, or any
// dropped-span / seq-gap errors occurred — making it suitable as a CI
// smoke gate. The report is written as JSON (BENCH_serve.json by
// convention).
//
// -overload FACTOR adds an overload scenario after the sweep: an open-loop
// run at FACTOR × the peak throughput the sweep measured (2 = the classic
// 2×-saturation probe). Its gates assert the server degrades by policy,
// not by collapse: zero 5xx, zero errors on admitted requests, every shed
// request a 429 with a Retry-After header, the shed fraction within
// -overload-shed-min/max, and admitted-request p99 still within
// -overload-slo-p99 (default: the -slo-p99 target). Admitted latency is
// measured open loop — from each request's scheduled arrival time — so it
// includes the queueing delay a real client would see under the burst.
//
// Example:
//
//	ccload -url http://127.0.0.1:8080 -levels 1,2,4,8 -duration 5s \
//	       -slo-p99 250ms -overload 2 -gate -out BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gocured/internal/loadgen"
)

// SLO burn states as reported by the server's burn-rate engine.
const (
	okState   = "ok"
	warnState = "warn"
	pageState = "page"
)

type sloReport struct {
	P99MS         float64 `json:"p99_ms"`
	Concurrency   int     `json:"concurrency"`
	ObservedP99MS float64 `json:"observed_p99_ms"`
	Pass          bool    `json:"pass"`
}

// overloadReport records the overload scenario's operating point and gate
// outcome: the server must shed excess load cleanly (429 + Retry-After, no
// 5xx, no admitted-request errors) while admitted requests keep the SLO.
type overloadReport struct {
	Factor        float64 `json:"factor"`
	SaturationRPS float64 `json:"saturation_rps"`
	TargetRPS     float64 `json:"target_rps"`
	ShedFraction  float64 `json:"shed_fraction"`
	ShedMin       float64 `json:"shed_min"`
	ShedMax       float64 `json:"shed_max"`
	AdmittedP99MS float64 `json:"admitted_p99_ms"`
	SLOP99MS      float64 `json:"slo_p99_ms,omitempty"`
	Pass          bool    `json:"pass"`
}

// burnReport records the SLO burn-rate observations of a gated run:
// steady-state states after the in-capacity sweep, the worst availability
// state observed while the overload scenario ran, and the states after
// the post-overload recovery wait.
type burnReport struct {
	Steady        []loadgen.SLOState `json:"steady,omitempty"`
	OverloadWorst string             `json:"overload_worst,omitempty"`
	Recovered     []loadgen.SLOState `json:"recovered,omitempty"`
	Pass          bool               `json:"pass"`
}

type report struct {
	GeneratedBy string         `json:"generated_by"`
	Generated   string         `json:"generated"`
	BaseURL     string         `json:"base_url"`
	DurationS   float64        `json:"duration_s_per_level"`
	Mix         map[string]int `json:"mix"`

	// Saturation is the closed-loop sweep, one entry per concurrency
	// level, in ascending order.
	Saturation []loadgen.Result `json:"saturation"`
	// OpenLoop is the optional fixed-arrival-rate run (-rate).
	OpenLoop *loadgen.Result `json:"open_loop,omitempty"`
	// Overload is the optional above-saturation open-loop run (-overload),
	// and OverloadGate its gate evaluation.
	Overload     *loadgen.Result `json:"overload,omitempty"`
	OverloadGate *overloadReport `json:"overload_gate,omitempty"`

	TraceCheck    loadgen.TraceCheck `json:"trace_check"`
	Events        loadgen.EventStats `json:"events"`
	TracesDropped uint64             `json:"traces_dropped"`

	// TraceparentSent/TraceparentEchoMismatch aggregate the W3C
	// trace-context round-trip check across every run (mismatches gate).
	TraceparentSent         int `json:"traceparent_sent"`
	TraceparentEchoMismatch int `json:"traceparent_echo_mismatch"`

	SLO        *sloReport  `json:"slo,omitempty"`
	Burn       *burnReport `json:"burn,omitempty"`
	Violations []string    `json:"violations,omitempty"`
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no concurrency levels")
	}
	return out, nil
}

func parseMix(s string) (map[string]int, error) {
	if s == "" {
		return loadgen.DefaultMix(), nil
	}
	mix := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want class=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		mix[strings.TrimSpace(name)] = w
	}
	return mix, nil
}

func main() {
	var (
		url       = flag.String("url", "http://127.0.0.1:8080", "ccserve base URL")
		levels    = flag.String("levels", "1,2,4,8", "comma-separated closed-loop concurrency sweep")
		duration  = flag.Duration("duration", 5*time.Second, "duration per sweep level")
		rate      = flag.Float64("rate", 0, "additional open-loop run at this arrival rate (req/s; 0 = skip)")
		overload  = flag.Float64("overload", 0, "overload run at this multiple of the sweep's peak throughput (0 = skip)")
		shedMin   = flag.Float64("overload-shed-min", 0, "minimum acceptable shed fraction in the overload run")
		shedMax   = flag.Float64("overload-shed-max", 0.95, "maximum acceptable shed fraction in the overload run")
		ovlSLO    = flag.Duration("overload-slo-p99", 0, "admitted-request p99 SLO for the overload run (0 = use -slo-p99)")
		mixFlag   = flag.String("mix", "", "traffic mix as class=weight,... (classes: hit,run,cure,edit,heavy)")
		seed      = flag.Int64("seed", 1, "random seed for the class sequence")
		waitReady = flag.Duration("wait-ready", 30*time.Second, "how long to poll /readyz before starting")
		out       = flag.String("out", "BENCH_serve.json", "report path (- = stdout)")
		sloP99    = flag.Duration("slo-p99", 0, "p99 latency SLO at the gated level (0 = no SLO)")
		sloLevel  = flag.Int("slo-level", 0, "concurrency level the SLO applies to (0 = lowest swept level)")
		gate      = flag.Bool("gate", false, "exit non-zero on SLO violation, trace-check failure, errors, or seq gaps")
		burnGate  = flag.Bool("burn-gate", false, "gate on server-side SLO burn states: no page in steady state; with -overload, availability must burn to warn/page and recover to ok")
		burnWait  = flag.Duration("burn-recovery-wait", 30*time.Second, "how long after the overload run to wait for SLO states to return to ok")
		histOut   = flag.String("history-out", "", "write the server's full /metrics/history dump to this file after the run")
	)
	flag.Parse()

	lvls, err := parseLevels(*levels)
	if err != nil {
		fatal(err)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if err := loadgen.WaitReady(ctx, nil, *url, *waitReady); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ccload: %s ready; sweeping concurrency %v, %v per level\n", *url, lvls, *duration)

	watcher := loadgen.WatchEvents(ctx, nil, *url)

	rep := report{
		GeneratedBy: "ccload",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		BaseURL:     *url,
		DurationS:   duration.Seconds(),
		Mix:         mix,
	}

	// The trace check samples a high-latency cache miss. The server's trace
	// buffer is bounded, so a trace from early in the sweep may be evicted
	// by later traffic — check right after each run while its traces are
	// still live, preferring the level's slowest miss and falling back to
	// its most recent one. The slowest passing check across the sweep wins.
	var traceCheck *loadgen.TraceCheck
	traceCheckMS := 0.0
	checkRun := func(res loadgen.Result) {
		candidates := []struct {
			id string
			ms float64
		}{
			{res.SlowestMissTraceID, res.SlowestMissMS},
			{res.LastMissTraceID, res.LastMissMS},
		}
		for _, cand := range candidates {
			if cand.id == "" {
				continue
			}
			tc := loadgen.CheckTrace(ctx, nil, *url, cand.id, loadgen.RequiredCompileSpans)
			if tc.OK {
				if traceCheck == nil || !traceCheck.OK || cand.ms >= traceCheckMS {
					traceCheck, traceCheckMS = &tc, cand.ms
				}
				return
			}
			if traceCheck == nil || !traceCheck.OK {
				traceCheck = &tc
			}
		}
	}

	for _, c := range lvls {
		res, err := loadgen.Run(ctx, loadgen.Config{
			BaseURL:     *url,
			Duration:    *duration,
			Concurrency: c,
			Mix:         mix,
			Seed:        *seed + int64(c),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccload: c=%-3d %6.1f req/s  p50=%.2fms p99=%.2fms p999=%.2fms errs=%d\n",
			c, res.ThroughputRPS, res.P50MS, res.P99MS, res.P999MS, res.Errors)
		rep.Saturation = append(rep.Saturation, res)
		checkRun(res)
	}

	if *rate > 0 {
		res, err := loadgen.Run(ctx, loadgen.Config{
			BaseURL:    *url,
			Duration:   *duration,
			RatePerSec: *rate,
			Mix:        mix,
			Seed:       *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccload: open loop %.0f req/s  p50=%.2fms p99=%.2fms p999=%.2fms errs=%d\n",
			*rate, res.P50MS, res.P99MS, res.P999MS, res.Errors)
		rep.OpenLoop = &res
		checkRun(res)
	}

	// Steady-state burn check: the in-capacity sweep must not leave any SLO
	// in page state. Warn is tolerated (short CI windows are noisy); a page
	// here means the server is burning error budget under nominal load.
	var burn *burnReport
	if *burnGate {
		burn = &burnReport{Pass: true}
		rep.Burn = burn
		states, err := loadgen.FetchSLOStates(ctx, nil, *url)
		switch {
		case err != nil:
			burn.Pass = false
			rep.Violations = append(rep.Violations, "burn: "+err.Error())
		case len(states) == 0:
			burn.Pass = false
			rep.Violations = append(rep.Violations, "burn: -burn-gate set but server reports no SLOs (history disabled?)")
		default:
			burn.Steady = states
			for _, s := range states {
				if s.State == pageState {
					burn.Pass = false
					rep.Violations = append(rep.Violations,
						fmt.Sprintf("burn: SLO %q in page state after steady-state sweep (burn %.1f)", s.Name, s.MaxBurn))
				}
			}
		}
	}

	// Stop the event-stream gate before the overload run: the bus drops
	// events for slow consumers by design, and deliberately driving the
	// server past saturation overwhelms it. Sequence gaps there are the
	// policy working, not an observability regression; the gap gate covers
	// the in-SLO sweep and open-loop runs above.
	rep.Events = watcher.Stop()

	if *overload > 0 {
		satRPS := 0.0
		for _, r := range rep.Saturation {
			if r.ThroughputRPS > satRPS {
				satRPS = r.ThroughputRPS
			}
		}
		if satRPS <= 0 {
			rep.Violations = append(rep.Violations, "overload: sweep measured zero throughput")
		} else {
			target := *overload * satRPS
			fmt.Fprintf(os.Stderr, "ccload: overload %.1fx saturation (%.1f req/s open loop)\n", *overload, target)
			res, err := loadgen.Run(ctx, loadgen.Config{
				BaseURL:    *url,
				Duration:   *duration,
				RatePerSec: target,
				Mix:        mix,
				Seed:       *seed + 104729,
			})
			if err != nil {
				fatal(err)
			}
			admitted := res.Requests - res.Shed - res.Errors
			frac := 0.0
			if res.Requests > 0 {
				frac = float64(res.Shed) / float64(res.Requests)
			}
			fmt.Fprintf(os.Stderr, "ccload: overload %6.1f req/s admitted  p50=%.2fms p99=%.2fms  shed=%d/%d (%.1f%%) errs=%d 5xx=%d\n",
				res.ThroughputRPS, res.P50MS, res.P99MS, res.Shed, res.Requests, frac*100, res.Errors, res.Status5xx)
			rep.Overload = &res
			og := &overloadReport{
				Factor:        *overload,
				SaturationRPS: satRPS,
				TargetRPS:     target,
				ShedFraction:  frac,
				ShedMin:       *shedMin,
				ShedMax:       *shedMax,
				AdmittedP99MS: res.P99MS,
			}
			// The overload run is open loop, so admitted latency includes
			// queueing-delay correction (time from scheduled arrival, not
			// send) — a separate, looser SLO than the in-capacity sweep's.
			slo := *ovlSLO
			if slo == 0 {
				slo = *sloP99
			}
			if slo > 0 {
				og.SLOP99MS = float64(slo) / float64(time.Millisecond)
			}
			og.Pass = true
			fail := func(format string, args ...any) {
				og.Pass = false
				rep.Violations = append(rep.Violations, "overload: "+fmt.Sprintf(format, args...))
			}
			if res.Status5xx > 0 {
				fail("%d 5xx responses (server must shed with 429, not fail)", res.Status5xx)
			}
			if res.Errors > 0 {
				fail("%d errors on admitted requests (of %d admitted)", res.Errors, admitted)
			}
			if res.ShedNoRetryAfter > 0 {
				fail("%d shed responses without a usable Retry-After header", res.ShedNoRetryAfter)
			}
			if frac < *shedMin || frac > *shedMax {
				fail("shed fraction %.3f outside [%.3f, %.3f]", frac, *shedMin, *shedMax)
			}
			if og.SLOP99MS > 0 && res.P99MS > og.SLOP99MS {
				fail("admitted p99 %.2fms > SLO %.2fms", res.P99MS, og.SLOP99MS)
			}
			rep.OverloadGate = og

			// Burn-rate gate: the shed burst must trip the burn alert
			// (the fast windows still cover it for several seconds after
			// the run ends), and the alert must clear once load stops.
			if burn != nil {
				worst := observeBurn(ctx, *url, 10*time.Second)
				burn.OverloadWorst = worst
				if worst != warnState && worst != pageState {
					burn.Pass = false
					rep.Violations = append(rep.Violations,
						fmt.Sprintf("burn: overload did not trip the burn alert (worst state %q, want warn or page)", worst))
				}
				rec, err := loadgen.WaitSLOState(ctx, nil, *url, map[string]bool{okState: true}, *burnWait)
				burn.Recovered = rec
				if err != nil {
					burn.Pass = false
					rep.Violations = append(rep.Violations, "burn: recovery: "+err.Error())
				}
			}
		}
	}

	if traceCheck != nil {
		rep.TraceCheck = *traceCheck
	} else {
		rep.TraceCheck.Err = "no cache-miss trace sampled in any run"
	}
	if m, err := loadgen.FetchMetrics(ctx, nil, *url); err != nil {
		rep.Violations = append(rep.Violations, "metrics: "+err.Error())
	} else if m.Traces != nil {
		rep.TracesDropped = m.Traces.Dropped
	}

	// Gate evaluation. Violations are always reported; -gate decides
	// whether they are fatal.
	if *sloP99 > 0 {
		gated := rep.Saturation[0]
		if *sloLevel > 0 {
			found := false
			for _, r := range rep.Saturation {
				if r.Concurrency == *sloLevel {
					gated, found = r, true
					break
				}
			}
			if !found {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("slo-level %d not in sweep %v", *sloLevel, lvls))
			}
		}
		slo := &sloReport{
			P99MS:         float64(*sloP99) / float64(time.Millisecond),
			Concurrency:   gated.Concurrency,
			ObservedP99MS: gated.P99MS,
		}
		slo.Pass = slo.ObservedP99MS <= slo.P99MS
		rep.SLO = slo
		if !slo.Pass {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("p99 SLO: %.2fms > %.2fms at concurrency %d",
					slo.ObservedP99MS, slo.P99MS, slo.Concurrency))
		}
	}
	if !rep.TraceCheck.OK {
		rep.Violations = append(rep.Violations, "trace check: "+rep.TraceCheck.Err)
	}
	if rep.Events.SeqGaps > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("event stream: %d seq gaps (%d events dropped)", rep.Events.SeqGaps, rep.Events.Dropped))
	}
	if rep.Events.Err != "" {
		rep.Violations = append(rep.Violations, "event stream: "+rep.Events.Err)
	}
	if rep.TracesDropped > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("trace buffer dropped %d traces", rep.TracesDropped))
	}
	for _, r := range rep.Saturation {
		if r.Errors > 0 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%d request errors at concurrency %d", r.Errors, r.Concurrency))
		}
	}

	// W3C trace-context round-trip gate: every run mints a traceparent per
	// request and checks the response echoes the same trace-id; a mismatch
	// anywhere means context propagation is broken.
	allRuns := make([]*loadgen.Result, 0, len(rep.Saturation)+2)
	for i := range rep.Saturation {
		allRuns = append(allRuns, &rep.Saturation[i])
	}
	allRuns = append(allRuns, rep.OpenLoop, rep.Overload)
	for _, r := range allRuns {
		if r == nil {
			continue
		}
		rep.TraceparentSent += r.TraceparentSent
		rep.TraceparentEchoMismatch += r.TraceparentEchoMismatch
	}
	if rep.TraceparentSent == 0 {
		rep.Violations = append(rep.Violations, "traceparent: no round-trips recorded (propagation check never ran)")
	}
	if rep.TraceparentEchoMismatch > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("traceparent: %d of %d responses echoed a different trace-id", rep.TraceparentEchoMismatch, rep.TraceparentSent))
	}

	if *histOut != "" {
		if dump, err := loadgen.FetchHistory(ctx, nil, *url, 0); err != nil {
			rep.Violations = append(rep.Violations, "history: "+err.Error())
		} else if data, err := json.MarshalIndent(dump, "", "  "); err != nil {
			rep.Violations = append(rep.Violations, "history: "+err.Error())
		} else if err := os.WriteFile(*histOut, append(data, '\n'), 0o644); err != nil {
			rep.Violations = append(rep.Violations, "history: "+err.Error())
		} else {
			fmt.Fprintf(os.Stderr, "ccload: history dump written to %s (%d points)\n", *histOut, len(dump.Points))
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccload: report written to %s\n", *out)
	}

	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "ccload: VIOLATION: %s\n", v)
		}
		if *gate {
			os.Exit(1)
		}
	} else {
		fmt.Fprintln(os.Stderr, "ccload: all gates passed")
	}
}

// observeBurn polls the server's SLO states and returns the worst state
// seen, returning early once a warn or page is observed. Called right
// after the overload run, while the burn windows still cover the burst.
func observeBurn(ctx context.Context, baseURL string, timeout time.Duration) string {
	rank := map[string]int{okState: 0, warnState: 1, pageState: 2}
	worst := ""
	deadline := time.Now().Add(timeout)
	for {
		states, err := loadgen.FetchSLOStates(ctx, nil, baseURL)
		if err == nil {
			for _, s := range states {
				if worst == "" || rank[s.State] > rank[worst] {
					worst = s.State
				}
			}
		}
		if (worst != "" && rank[worst] >= rank[warnState]) || time.Now().After(deadline) {
			return worst
		}
		select {
		case <-ctx.Done():
			return worst
		case <-time.After(250 * time.Millisecond):
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccload:", err)
	os.Exit(2)
}
