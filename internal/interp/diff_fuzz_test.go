package interp_test

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"gocured/internal/core"
	"gocured/internal/infer"
	"gocured/internal/interp"
	"gocured/internal/store"
)

// Differential testing: generate random C programs exercising pointers
// (SAFE and SEQ via arithmetic), structs with physical-subtyping casts,
// address-of, and loops — including the shapes the check optimizer
// rewrites (invariant checks, induction-variable bounds checks, adjacent
// constant offsets) — and demand that four executions agree:
//
//	raw          the uninstrumented program (skipped when the program is
//	             built to trap: a trapping program is UB raw)
//	tree -O0     every check the curer inserted, on the tree walker
//	tree -O      the CFG optimizer's output, on the tree walker
//	vm   -O0/-O  the same two builds on the bytecode VM
//
// The -O0 vs -O comparison is the optimizer's soundness oracle: same
// stdout, same exit code, same trap-or-not, same trap kind, same trap
// line. A hoisted or widened check may fire earlier in *time*, but only on
// executions that trap either way, so no observable difference is
// tolerated. Most generated programs are trap-free; a fraction contain a
// deliberate out-of-bounds access so the trap paths are exercised too.
//
// The tree vs vm comparison is the bytecode backend's soundness oracle and
// is stricter: the two backends execute the *same* instrumented program,
// so they must agree bit-for-bit on everything — stdout, exit code, the
// trap's kind/message/position/stack, every counter (steps, checks,
// per-kind tallies, simulated cycles), raw memory traffic, and the entire
// per-site attribution table.

type progGen struct {
	rng   uint64
	b     strings.Builder
	depth int
	// oob records that the program contains a deliberate out-of-bounds
	// access (raw execution is UB and is skipped).
	oob bool
}

func (g *progGen) next() uint64 {
	g.rng = g.rng*6364136223846793005 + 1442695040888963407
	return g.rng >> 17
}

func (g *progGen) pick(n int) int { return int(g.next() % uint64(n)) }

// expr emits an int-valued expression over the in-scope names.
func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.pick(3) == 0 {
		switch g.pick(8) {
		case 0:
			return fmt.Sprintf("%d", g.pick(100))
		case 1:
			return fmt.Sprintf("v%d", g.pick(3))
		case 2:
			return fmt.Sprintf("arr[%d]", g.pick(8))
		case 3:
			return fmt.Sprintf("g%d", g.pick(2))
		case 4:
			return "(*q)" // SAFE deref
		case 5:
			return fmt.Sprintf("p[%d]", g.pick(4)) // SEQ deref, base offset <= 3
		case 6:
			return "sp->tag" // through the upcast pointer
		default:
			return fmt.Sprintf("tt.data[%d]", g.pick(4))
		}
	}
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.pick(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / (1 + ((%s) & 7)))", a, b) // no div-by-zero
	case 4:
		return fmt.Sprintf("(%s %% (1 + ((%s) & 15)))", a, b)
	case 5:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	default:
		return fmt.Sprintf("(%s < %s)", a, b)
	}
}

func (g *progGen) stmt(depth int) {
	ind := strings.Repeat("    ", g.depth+1)
	switch g.pick(14) {
	case 0:
		fmt.Fprintf(&g.b, "%sv%d = %s;\n", ind, g.pick(3), g.expr(depth))
	case 1:
		// In-bounds array store (index masked to the array length).
		fmt.Fprintf(&g.b, "%sarr[(%s) & 7] = %s;\n", ind, g.expr(1), g.expr(depth))
	case 2:
		fmt.Fprintf(&g.b, "%sg%d += %s;\n", ind, g.pick(2), g.expr(depth))
	case 3:
		if depth > 0 {
			fmt.Fprintf(&g.b, "%sif (%s) {\n", ind, g.expr(1))
			g.depth++
			g.stmt(depth - 1)
			g.depth--
			if g.pick(2) == 0 {
				fmt.Fprintf(&g.b, "%s} else {\n", ind)
				g.depth++
				g.stmt(depth - 1)
				g.depth--
			}
			fmt.Fprintf(&g.b, "%s}\n", ind)
		} else {
			fmt.Fprintf(&g.b, "%sv0 = v0 + 1;\n", ind)
		}
	case 4:
		// Widenable loop: induction-variable bounds checks under a
		// constant limit.
		fmt.Fprintf(&g.b, "%sfor (i = 0; i < 8; i++) { acc += arr[i]; }\n", ind)
	case 5:
		// Hoistable loop: the checks on p and q are loop-invariant.
		fmt.Fprintf(&g.b, "%sfor (i = 0; i < %d; i++) { acc += *q + p[0]; }\n", ind, 2+g.pick(5))
	case 6:
		// SEQ pointer re-aim + adjacent constant offsets (coalescing).
		fmt.Fprintf(&g.b, "%sp = arr + %d; acc += p[0] + p[1] + p[2];\n", ind, g.pick(4))
	case 7:
		// SAFE pointer re-aim via address-of.
		fmt.Fprintf(&g.b, "%sq = &v%d; *q = *q + %d;\n", ind, g.pick(3), g.pick(9))
	case 8:
		// Address of an array element: SEQ via &arr[k].
		fmt.Fprintf(&g.b, "%sp = &arr[(%s) & 3]; acc += p[1];\n", ind, g.expr(1))
	case 9:
		// Physical-subtyping upcast and access through it.
		fmt.Fprintf(&g.b, "%ssp = (struct S *)&tt; sp->tag = %s; acc += sp->data[%d];\n",
			ind, g.expr(depth), g.pick(4))
	case 10:
		// Struct stores, direct and through the upcast view.
		fmt.Fprintf(&g.b, "%stt.data[(%s) & 3] = %s; tt.extra = tt.extra + 1;\n",
			ind, g.expr(1), g.expr(depth))
	case 11:
		// Call with pointer argument (kills memory facts at the call site).
		fmt.Fprintf(&g.b, "%sacc += helper(v%d, arr);\n", ind, g.pick(3))
	case 12:
		fmt.Fprintf(&g.b, "%sacc += deref(q) + deref(&v%d);\n", ind, g.pick(3))
	default:
		// Nested loop writing through a moving SEQ pointer.
		fmt.Fprintf(&g.b, "%sfor (i = 0; i < 4; i++) { p = arr + i; p[0] = p[0] + v%d; }\n",
			ind, g.pick(3))
	}
}

// oobStmt injects one deliberately out-of-bounds access; the cured builds
// must trap identically on it.
func (g *progGen) oobStmt() {
	g.oob = true
	ind := strings.Repeat("    ", g.depth+1)
	switch g.pick(4) {
	case 0:
		// Constant index one past the end.
		fmt.Fprintf(&g.b, "%sacc += arr[8];\n", ind)
	case 1:
		// The classic off-by-one loop (widenable shape: the endpoint check
		// must trap exactly like the per-iteration check).
		fmt.Fprintf(&g.b, "%sfor (i = 0; i <= 8; i++) { acc += arr[i]; }\n", ind)
	case 2:
		// SEQ arithmetic past the end, then a read.
		fmt.Fprintf(&g.b, "%sp = arr + 7; acc += p[2];\n", ind)
	default:
		// Coalescing shape where a later member is out of bounds.
		fmt.Fprintf(&g.b, "%sp = arr + 6; acc += p[0] + p[1] + p[2];\n", ind)
	}
}

// generate produces one random program. The fixed frame declares scalars,
// two structs related by physical subtyping, a SEQ pointer into an array,
// and a SAFE pointer to a scalar, so every statement the generator emits
// has well-typed material to work with.
func generate(seed uint64) (string, bool) {
	g := &progGen{rng: seed*2654435761 + 1}
	g.b.WriteString(`
extern int printf(char *fmt, ...);
struct S { int tag; int data[4]; };
struct T { int tag; int data[4]; int extra; };
int g0 = 3;
int g1 = 7;

int helper(int x, int *a) {
    int k, t = x;
    for (k = 0; k < 8; k++) t += a[k] * (k + 1);
    return t;
}

int deref(int *p) { return *p; }

int main(void) {
    int v0 = 1, v1 = 2, v2 = 3;
    int arr[8];
    struct T tt;
    struct S *sp;
    int *p = arr;
    int *q = &v0;
    int i, acc = 0;
    for (i = 0; i < 8; i++) arr[i] = i * 5;
    tt.tag = 1; tt.extra = 2;
    for (i = 0; i < 4; i++) tt.data[i] = i + 10;
    sp = (struct S *)&tt;
`)
	n := 6 + g.pick(8)
	oobAt := -1
	if g.pick(5) == 0 { // ~20% of programs exercise a trap path
		oobAt = g.pick(n)
	}
	for i := 0; i < n; i++ {
		if i == oobAt {
			g.oobStmt()
			continue
		}
		g.stmt(2)
	}
	g.b.WriteString(`
    acc += v0 + 2 * v1 + 3 * v2 + g0 + g1 + *p + *q;
    acc += sp->tag + tt.extra;
    for (i = 0; i < 8; i++) acc = acc * 31 + arr[i];
    for (i = 0; i < 4; i++) acc = acc * 17 + tt.data[i];
    printf("%d\n", acc);
    return 0;
}
`)
	return g.b.String(), g.oob
}

// trapLine reduces a rendered trap position to file:line — coalescing may
// move a trap to a sibling column of the same source line, which is an
// allowed difference.
func trapLine(pos string) string {
	parts := strings.Split(pos, ":")
	if len(parts) >= 2 {
		return parts[0] + ":" + parts[1]
	}
	return pos
}

// identicalBackends demands bit-exact agreement between a tree-walker and
// a VM execution of the same instrumented program.
func identicalBackends(label string, tree, vmo *interp.Outcome) error {
	if tree.Stdout != vmo.Stdout {
		return fmt.Errorf("%s stdout diverges between backends:\ntree: %q\nvm:   %q", label, tree.Stdout, vmo.Stdout)
	}
	if tree.ExitCode != vmo.ExitCode {
		return fmt.Errorf("%s exit code diverges between backends: tree %d, vm %d", label, tree.ExitCode, vmo.ExitCode)
	}
	if (tree.Trap == nil) != (vmo.Trap == nil) {
		return fmt.Errorf("%s trap diverges between backends: tree %v, vm %v", label, tree.Trap, vmo.Trap)
	}
	if tree.Trap != nil {
		if tree.Trap.Kind != vmo.Trap.Kind || tree.Trap.Msg != vmo.Trap.Msg ||
			tree.Trap.Pos != vmo.Trap.Pos || !reflect.DeepEqual(tree.Trap.Stack, vmo.Trap.Stack) {
			return fmt.Errorf("%s trap detail diverges between backends:\ntree: %+v\nvm:   %+v", label, tree.Trap, vmo.Trap)
		}
	}
	tc, vc := &tree.Counters, &vmo.Counters
	if tc.Steps != vc.Steps || tc.Checks != vc.Checks || tc.Cost != vc.Cost || tc.ChecksByKind != vc.ChecksByKind {
		return fmt.Errorf("%s counters diverge between backends:\ntree: steps %d checks %d cost %d %v\nvm:   steps %d checks %d cost %d %v",
			label, tc.Steps, tc.Checks, tc.Cost, tc.ChecksByKind, vc.Steps, vc.Checks, vc.Cost, vc.ChecksByKind)
	}
	if tree.MemLoads != vmo.MemLoads || tree.MemStores != vmo.MemStores {
		return fmt.Errorf("%s memory traffic diverges between backends: tree %d/%d, vm %d/%d",
			label, tree.MemLoads, tree.MemStores, vmo.MemLoads, vmo.MemStores)
	}
	if !reflect.DeepEqual(tc.Sites, vc.Sites) {
		return fmt.Errorf("%s per-site check attribution diverges between backends", label)
	}
	return nil
}

// fuzzStore lazily opens one on-disk artifact store shared by every fuzz
// seed's store leg (each seed addresses disjoint chunks by content).
var fuzzStore = sync.OnceValue(func() *store.Artifacts {
	dir, err := os.MkdirTemp("", "gocured-fuzz-store-")
	if err != nil {
		panic(err)
	}
	s, err := store.Open(dir)
	if err != nil {
		panic(err)
	}
	return store.NewArtifacts(s, "fuzz", "go-fuzz")
})

// checkSeed builds and runs one generated program all four ways and
// reports any disagreement.
func checkSeed(seed uint64) error {
	src, oob := generate(seed)
	fail := func(format string, args ...any) error {
		return fmt.Errorf("seed %d: %s\nprogram:\n%s", seed, fmt.Sprintf(format, args...), src)
	}

	u0, err := core.Build("fuzz.c", src, infer.Options{NoOptimize: true})
	if err != nil {
		return fail("build -O0 failed: %v", err)
	}
	uo, err := core.Build("fuzz.c", src, infer.Options{})
	if err != nil {
		return fail("build -O failed: %v", err)
	}

	// The default backend is the VM, so c0/co are the bytecode legs.
	c0, err := u0.RunCured(interp.Config{})
	if err != nil {
		return fail("run cured -O0: %v", err)
	}
	co, err := uo.RunCured(interp.Config{})
	if err != nil {
		return fail("run cured -O: %v", err)
	}
	t0, err := u0.RunCured(interp.Config{Backend: interp.BackendTree})
	if err != nil {
		return fail("run cured -O0 (tree): %v", err)
	}
	to, err := uo.RunCured(interp.Config{Backend: interp.BackendTree})
	if err != nil {
		return fail("run cured -O (tree): %v", err)
	}
	if err := identicalBackends("-O0", t0, c0); err != nil {
		return fail("%v", err)
	}
	if err := identicalBackends("-O", to, co); err != nil {
		return fail("%v", err)
	}

	// The optimizer must be observably invisible: -O0 and -O agree on
	// everything a user can see.
	if c0.Stdout != co.Stdout {
		return fail("stdout diverges:\n-O0: %q\n-O:  %q", c0.Stdout, co.Stdout)
	}
	if (c0.Trap == nil) != (co.Trap == nil) {
		return fail("trap diverges: -O0 %v, -O %v", c0.Trap, co.Trap)
	}
	if c0.Trap != nil {
		if c0.Trap.Kind != co.Trap.Kind {
			return fail("trap kind diverges: -O0 %q, -O %q", c0.Trap.Kind, co.Trap.Kind)
		}
		if trapLine(c0.Trap.Pos) != trapLine(co.Trap.Pos) {
			return fail("trap site diverges: -O0 %s, -O %s", c0.Trap.Pos, co.Trap.Pos)
		}
	} else if c0.ExitCode != co.ExitCode {
		return fail("exit code diverges: -O0 %d, -O %d", c0.ExitCode, co.ExitCode)
	}

	// Store leg (every 8th seed): the same program built through the
	// persistent artifact store — cold (recording summaries) and warm
	// (replaying them) — must be indistinguishable from the fresh -O
	// build: identical static stats and a bit-identical execution.
	if seed%8 == 0 {
		sums := fuzzStore().ForOptions(infer.Options{})
		ucold, err := core.BuildStored("fuzz.c", src, infer.Options{}, sums)
		if err != nil {
			return fail("build stored (cold) failed: %v", err)
		}
		uwarm, err := core.BuildStored("fuzz.c", src, infer.Options{}, sums)
		if err != nil {
			return fail("build stored (warm) failed: %v", err)
		}
		if uwarm.Incr.Loaded != uwarm.Incr.Funcs-uwarm.Incr.Unstorable {
			return fail("warm stored build did not replay: %+v", uwarm.Incr)
		}
		if ucold.Stats() != uo.Stats() || uwarm.Stats() != uo.Stats() {
			return fail("stored build stats diverge from fresh build:\nfresh: %+v\ncold:  %+v\nwarm:  %+v",
				uo.Stats(), ucold.Stats(), uwarm.Stats())
		}
		cs, err := uwarm.RunCured(interp.Config{})
		if err != nil {
			return fail("run cured (stored): %v", err)
		}
		if err := identicalBackends("-O stored", co, cs); err != nil {
			return fail("%v", err)
		}
	}

	// Programs without an injected OOB must be trap-free, and the raw
	// execution must agree with the cured ones.
	if !oob {
		if c0.Trap != nil {
			return fail("cured trap on a correct program: %v", c0.Trap)
		}
		raw, err := u0.RunRaw(interp.PolicyNone, interp.Config{})
		if err != nil {
			return fail("run raw: %v", err)
		}
		if raw.Trap != nil {
			return fail("raw trap (generator emitted UB?): %v", raw.Trap)
		}
		if raw.Stdout != c0.Stdout {
			return fail("raw/cured stdout diverges:\nraw:   %q\ncured: %q", raw.Stdout, c0.Stdout)
		}
		if raw.ExitCode != c0.ExitCode {
			return fail("raw/cured exit code diverges: %d vs %d", raw.ExitCode, c0.ExitCode)
		}
	} else if c0.Trap == nil {
		// Every injected OOB pattern is a genuine violation; the cured
		// build must catch it.
		return fail("injected out-of-bounds access did not trap")
	}
	return nil
}

// fuzzSeeds returns how many seeds to run: GOCURED_FUZZ_SEEDS overrides,
// -short keeps the suite quick, the default meets the 5000-program budget
// of the optimizer's acceptance bar.
func fuzzSeeds(t *testing.T) uint64 {
	if env := os.Getenv("GOCURED_FUZZ_SEEDS"); env != "" {
		n, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("GOCURED_FUZZ_SEEDS: %v", err)
		}
		return n
	}
	if testing.Short() {
		return 250
	}
	return 5000
}

func TestDifferentialRandomPrograms(t *testing.T) {
	n := fuzzSeeds(t)
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	seeds := make(chan uint64, workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				if err := checkSeed(seed); err != nil {
					select {
					case errs <- err:
					default: // keep only the first few failures
					}
				}
			}
		}()
	}
	for seed := uint64(1); seed <= n; seed++ {
		seeds <- seed
	}
	close(seeds)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// FuzzDifferential is the native-fuzzing entry to the same oracle: any
// uint64 becomes a generated program that must behave identically raw,
// cured -O0, and cured -O, on both the tree walker and the bytecode VM.
func FuzzDifferential(f *testing.F) {
	for seed := uint64(1); seed <= 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := checkSeed(seed); err != nil {
			t.Error(err)
		}
	})
}
