package pipeline

import "time"

// Multi-window multi-burn-rate SLO alerting over the in-process metrics
// history, after the Google SRE workbook's recipe: a burn rate is the
// error-budget consumption speed (1.0 = spending exactly the budget the
// objective allows; 14.4 over 5 minutes = the whole 30-day budget gone in
// ~2 days). One window alone is either too twitchy (short) or too slow to
// clear (long); requiring a fast AND a slow window to exceed the threshold
// simultaneously pages only on burns that are both currently happening and
// sustained, and resets quickly once the burn stops because the short
// window drains first.
//
// Two objectives ship by default: availability (fraction of accepted work
// that is not shed, panicked, or timed out) and latency (fraction of
// completed requests under a target p99 bound). Both are evaluated from
// deltas between history snapshots, so the engine needs no per-request
// bookkeeping beyond what the metrics accumulator already keeps.

// Burn-rate thresholds: the fast window pair at PageBurn pages (budget
// exhausted in days), the slow pair at WarnBurn warns (exhausted in a
// week). Values are the SRE-workbook conventions for a 30-day window.
const (
	PageBurn = 14.4
	WarnBurn = 6.0
)

// SLO alert states, ordered by severity.
const (
	SLOStateOK   = "ok"
	SLOStateWarn = "warn"
	SLOStatePage = "page"
)

// Coverage gates: right after startup (or a retention shorter than the
// window) every window falls back to the oldest ring point, so all four
// "windows" evaluate the same few-seconds span and the multi-window
// safeguard degenerates to a single tiny sample — one shed request out of
// five in the first seconds would page. A window may therefore contribute
// to warn/page only once the history actually spans at least half the
// window and the window saw a minimum number of events.
const (
	minWindowCoverage = 0.5
	minWindowEvents   = 10
)

// SLOWindows are the four look-back windows burn rates are computed over:
// the fast pair gates paging, the slow pair gates warning. All four are
// configurable so tests and short CI runs can use seconds-scale windows.
type SLOWindows struct {
	FastShort time.Duration `json:"-"`
	FastLong  time.Duration `json:"-"`
	SlowShort time.Duration `json:"-"`
	SlowLong  time.Duration `json:"-"`
}

// DefaultSLOWindows returns the conventional 5m/1h fast pair and 30m/6h
// slow pair.
func DefaultSLOWindows() SLOWindows {
	return SLOWindows{
		FastShort: 5 * time.Minute,
		FastLong:  time.Hour,
		SlowShort: 30 * time.Minute,
		SlowLong:  6 * time.Hour,
	}
}

func (w SLOWindows) withDefaults() SLOWindows {
	d := DefaultSLOWindows()
	if w.FastShort <= 0 {
		w.FastShort = d.FastShort
	}
	if w.FastLong <= 0 {
		w.FastLong = d.FastLong
	}
	if w.SlowShort <= 0 {
		w.SlowShort = d.SlowShort
	}
	if w.SlowLong <= 0 {
		w.SlowLong = d.SlowLong
	}
	return w
}

// SLOSpec declares one objective. Name labels the SLO everywhere it is
// surfaced (JSON, Prometheus, SSE). Objective is the good fraction
// promised (e.g. 0.99). LatencyTargetMS > 0 makes it a latency SLO: an
// end-to-end observation is good when it lands in a histogram bucket whose
// bound is within the target; otherwise it is an availability SLO over
// admission and completion counters.
type SLOSpec struct {
	Name            string  `json:"name"`
	Objective       float64 `json:"objective"`
	LatencyTargetMS float64 `json:"latency_target_ms,omitempty"`
}

// DefaultSLOs returns the stock objectives: 99% availability and 99% of
// requests under targetP99MS end to end.
func DefaultSLOs(targetP99MS float64) []SLOSpec {
	return []SLOSpec{
		{Name: "availability", Objective: 0.99},
		{Name: "latency", Objective: 0.99, LatencyTargetMS: targetP99MS},
	}
}

// WindowBurn is one window's burn-rate evaluation inside an SLOStatus.
type WindowBurn struct {
	WindowMS int64 `json:"window_ms"`
	// SpanMS is the history span actually covered: shorter than WindowMS
	// while the ring is still filling or when retention is shorter than the
	// window.
	SpanMS int64   `json:"span_ms"`
	Good   uint64  `json:"good"`
	Total  uint64  `json:"total"`
	Burn   float64 `json:"burn"`
	// Eligible reports whether this window may contribute to alerting:
	// false while the history does not yet cover enough of the window
	// (SpanMS < minWindowCoverage × WindowMS) or the window saw fewer than
	// minWindowEvents events. Ineligible windows still report their burn
	// for observability but never trip warn/page.
	Eligible bool `json:"eligible"`
}

// alertEligible applies the coverage gates to one window.
func (w WindowBurn) alertEligible() bool {
	return float64(w.SpanMS) >= float64(w.WindowMS)*minWindowCoverage &&
		w.Total >= minWindowEvents
}

// SLOStatus is the burn-rate engine's current verdict on one objective,
// as surfaced in the /metrics JSON snapshot and the dashboard.
type SLOStatus struct {
	SLOSpec
	State string `json:"state"`
	// Windows holds the four evaluations in fast-short, fast-long,
	// slow-short, slow-long order.
	Windows []WindowBurn `json:"windows"`
}

// MaxBurn returns the largest burn rate across the status's windows.
func (s SLOStatus) MaxBurn() float64 {
	var max float64
	for _, w := range s.Windows {
		if w.Burn > max {
			max = w.Burn
		}
	}
	return max
}

// sloEvents extracts the (good, total) event counts for spec from the
// metrics delta between two snapshots (old before cur, same process).
func sloEvents(spec SLOSpec, old, cur Metrics) (good, total uint64) {
	if spec.LatencyTargetMS > 0 {
		d := cur.E2EWall.Delta(old.E2EWall)
		// Delta returns cur unchanged on inconsistent snapshots; with a
		// non-empty old snapshot that can only mean inconsistency (a clean
		// delta is always smaller than cur), so skip the window rather than
		// let a restart fabricate a giant one.
		if old.E2EWall.Count > 0 && d.Count == cur.E2EWall.Count {
			return 0, 0
		}
		total = d.Count
		for _, b := range d.Buckets {
			if b.LeMS != 0 && b.LeMS <= spec.LatencyTargetMS {
				good += b.Count
			}
		}
		return good, total
	}
	// Availability: every admission decision is an event; shed, panicked,
	// and timed-out jobs spend error budget.
	curTotal := cur.Admitted + cur.Shed
	oldTotal := old.Admitted + old.Shed
	if curTotal < oldTotal {
		return 0, 0
	}
	total = curTotal - oldTotal
	bad := (cur.Shed - old.Shed) + (cur.JobsPanicked - old.JobsPanicked) + (cur.JobsTimedOut - old.JobsTimedOut)
	if bad > total {
		bad = total
	}
	return total - bad, total
}

// burnRate converts a (good, total) window into a burn rate against the
// objective: error-fraction divided by the budget fraction. An empty
// window burns nothing.
func burnRate(spec SLOSpec, good, total uint64) float64 {
	if total == 0 {
		return 0
	}
	budget := 1 - spec.Objective
	if budget <= 0 {
		budget = 1e-9 // a 100% objective: any error is an infinite burn
	}
	errFrac := float64(total-good) / float64(total)
	return errFrac / budget
}

// sloState folds the four window burns into an alert state: page when both
// fast windows burn at PageBurn, warn when either pair sustains WarnBurn.
// Requiring both windows of a pair makes the alert reset as soon as the
// short window drains after the burn stops. Only Eligible windows count,
// so an under-covered history (startup, short retention) cannot page off a
// handful of events.
func sloState(w []WindowBurn) string {
	if len(w) != 4 {
		return SLOStateOK
	}
	over := func(a, b WindowBurn, burn float64) bool {
		return a.Eligible && b.Eligible && a.Burn >= burn && b.Burn >= burn
	}
	fastShort, fastLong, slowShort, slowLong := w[0], w[1], w[2], w[3]
	if over(fastShort, fastLong, PageBurn) {
		return SLOStatePage
	}
	if over(slowShort, slowLong, WarnBurn) || over(fastShort, fastLong, WarnBurn) {
		return SLOStateWarn
	}
	return SLOStateOK
}
