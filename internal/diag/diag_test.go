package diag

import (
	"strings"
	"testing"
)

func TestPosString(t *testing.T) {
	if got := (Pos{File: "a.c", Line: 3, Col: 7}).String(); got != "a.c:3:7" {
		t.Errorf("pos = %q", got)
	}
	if got := (Pos{Line: 3, Col: 7}).String(); got != "3:7" {
		t.Errorf("pos without file = %q", got)
	}
	if got := (Pos{}).String(); got != "<generated>" {
		t.Errorf("zero pos = %q", got)
	}
	if (Pos{}).IsValid() {
		t.Error("zero pos must be invalid")
	}
}

func TestListOrderingAndSeverity(t *testing.T) {
	var l List
	l.Warnf(Pos{File: "b.c", Line: 2, Col: 1}, "second")
	l.Errorf(Pos{File: "a.c", Line: 9, Col: 1}, "first-file")
	l.Notef(Pos{}, "generated-last")
	l.Errorf(Pos{File: "b.c", Line: 1, Col: 5}, "b-first")

	if !l.HasErrors() {
		t.Fatal("list has errors")
	}
	all := l.All()
	if len(all) != 4 {
		t.Fatalf("len = %d", len(all))
	}
	order := []string{"first-file", "b-first", "second", "generated-last"}
	for i, want := range order {
		if all[i].Message != want {
			t.Errorf("position %d: %q, want %q", i, all[i].Message, want)
		}
	}
	if all[0].Severity.String() != "error" || all[2].Severity.String() != "warning" {
		t.Error("severity names wrong")
	}
}

func TestErrSummarizesOnlyErrors(t *testing.T) {
	var l List
	l.Warnf(Pos{File: "x.c", Line: 1, Col: 1}, "just a warning")
	if l.Err() != nil {
		t.Error("warnings alone produce no error")
	}
	l.Errorf(Pos{File: "x.c", Line: 2, Col: 1}, "boom")
	err := l.Err()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
	if strings.Contains(err.Error(), "warning") {
		t.Error("warnings must not appear in Err()")
	}
}

func TestErrTruncation(t *testing.T) {
	var l List
	for i := 0; i < 30; i++ {
		l.Errorf(Pos{File: "x.c", Line: i + 1, Col: 1}, "e%d", i)
	}
	msg := l.Err().Error()
	if !strings.Contains(msg, "and more errors") {
		t.Error("long error lists must truncate")
	}
}
