// Per-function constraint summaries.
//
// The whole-program inference of this package walks every function body,
// classifying casts (PhysEqual/Prefix/Tile structural comparisons) and
// mutating the qualifier graph (node registration, unions, flow edges,
// kind-forcing marks). A summary records the graph mutations of one
// function's collection pass as a flat op stream whose operands are
// symbolic occurrence references, so a later compile of an unchanged
// function can *replay* the stream against a fresh graph — skipping the
// body walk and every structural type comparison — and still produce a
// bit-identical graph (same node creation order, same node IDs, same
// provenance edges, same cast sites).
//
// Two properties make the replay exact:
//
//  1. Op emission is purely structural. Every decision the collector makes
//     while emitting ops (cast classification, null detection, allocator
//     detection) depends only on the function body, the declarations it
//     references, and the inference options — never on qualifier-graph
//     state. All of those inputs are covered by the summary's content hash
//     (FingerprintFunc/FingerprintDecls + the store key), so a hash match
//     guarantees the recorded stream is exactly what a fresh collection
//     would emit.
//
//  2. Graph-state-dependent values are re-derived at replay time, at the
//     same sequence point. Ops name type occurrences, not node IDs; a
//     replayed Lookup at op position k sees the same graph state as the
//     recorded Lookup did, so it returns the same node. Where the original
//     collector caches a Lookup across intervening unions (collectCast's
//     nf/nt), the recording binds the node to a virtual register at the
//     original lookup point and later ops reference the register.
package infer

import (
	"fmt"
	"strings"

	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/qual"
)

// OccRef names one type occurrence symbolically: the idx-th occurrence
// visited while enumerating the owner scope. Owners are per-declaration
// ("su:<i>:<name>", "g:<var>", "ga:<var>", "x:<extern>", "xa:<extern>",
// "fs:<func>") or per-function-body ("fn:<func>"); indices are assigned
// independently per owner so that an edit to one function cannot shift
// another function's indices.
type OccRef struct {
	Owner string
	Idx   int32
}

// occTable is the bidirectional occurrence naming built from one parse.
type occTable struct {
	byType map[*ctypes.Type]OccRef // first-touch canonical name
	byName map[OccRef]*ctypes.Type
}

// ownerEnum enumerates one owner scope's occurrences. Dedup is per-owner:
// an occurrence reachable from two roots of the same owner gets one index,
// but an occurrence already claimed by an earlier owner still gets an
// index here too (byName must resolve it without consulting other owners).
type ownerEnum struct {
	tab   *occTable
	owner string
	n     int32
	seen  map[*ctypes.Type]bool
}

func (tab *occTable) enum(owner string) *ownerEnum {
	return &ownerEnum{tab: tab, owner: owner, seen: make(map[*ctypes.Type]bool)}
}

func (e *ownerEnum) root(t *ctypes.Type) {
	if t == nil {
		return
	}
	// Array occurrences carry a cached per-occurrence decay pointer that is
	// shared by every function decaying that array (e.g. a struct field
	// `int d[8]` used as `s->d`). Enumerate it eagerly under the same owner
	// so its existence — and therefore every index in this owner — does not
	// depend on which function bodies happen to decay it.
	pending := []*ctypes.Type{t}
	for len(pending) > 0 {
		cur := pending[0]
		pending = pending[1:]
		ctypes.Walk(cur, func(u *ctypes.Type) {
			if e.seen[u] {
				return
			}
			e.seen[u] = true
			ref := OccRef{Owner: e.owner, Idx: e.n}
			e.n++
			e.tab.byName[ref] = u
			if _, ok := e.tab.byType[u]; !ok {
				e.tab.byType[u] = ref
			}
			if u.Kind == ctypes.Array {
				pending = append(pending, u.Decay())
			}
		})
	}
}

// forEachFuncType visits every type-occurrence root in one function's
// scope, in a fixed order shared by the occurrence table and the body
// fingerprint: params/locals (value and address types), instruction result
// lvalue types, then every expression's type (and cast target types) in
// WalkFuncExprs order.
func forEachFuncType(f *cil.Func, visit func(*ctypes.Type)) {
	for _, p := range f.Params {
		visit(p.Type)
		visit(p.AddrType)
	}
	for _, l := range f.Locals {
		visit(l.Type)
		visit(l.AddrType)
	}
	cil.WalkInstrs(f.Body.Stmts, func(i cil.Instr) {
		switch in := i.(type) {
		case *cil.Set:
			visit(in.LV.Ty)
		case *cil.Call:
			if in.Result != nil {
				visit(in.Result.Ty)
			}
		}
	})
	cil.WalkFuncExprs(f, func(x cil.Expr) {
		visit(x.Type())
		if c, ok := x.(*cil.Cast); ok {
			visit(c.To)
		}
	})
}

// newOccTable enumerates every occurrence of the program. Declaration-owned
// scopes come first (in declaration order), so an occurrence shared between
// a declaration and a body gets the declaration's stable name; function
// scopes follow in program order.
func newOccTable(prog *cil.Program) *occTable {
	tab := &occTable{
		byType: make(map[*ctypes.Type]OccRef),
		byName: make(map[OccRef]*ctypes.Type),
	}
	for i, su := range prog.Structs {
		e := tab.enum(fmt.Sprintf("su:%d:%s", i, su.Name))
		for _, f := range su.Fields {
			e.root(f.Type)
			// The per-field address occurrence (shared by every &s.f in the
			// program) is created lazily by sema; create it here so the
			// owner's shape is the same whether or not any body takes the
			// address, then name it under the defining struct.
			if f.AddrType == nil {
				f.AddrType = ctypes.PointerTo(f.Type)
			}
			e.root(f.AddrType)
		}
	}
	for _, g := range prog.Globals {
		tab.enum("g:" + g.Var.Name).root(g.Var.Type)
		tab.enum("ga:" + g.Var.Name).root(g.Var.AddrType)
	}
	for _, v := range prog.Externs {
		tab.enum("x:" + v.Name).root(v.Type)
		tab.enum("xa:" + v.Name).root(v.AddrType)
	}
	for _, f := range prog.Funcs {
		tab.enum("fs:" + f.Name).root(f.Type)
	}
	// Function-address occurrences: every call site of a defined function
	// shares the function symbol's AddrType (FnConst.Ty), which is not
	// reachable from any declaration root. Name each by its callee, so one
	// caller's edit cannot shift the occurrence out from under the others.
	fnAddr := make(map[string]bool)
	for _, f := range prog.Funcs {
		cil.WalkFuncExprs(f, func(e cil.Expr) {
			if fc, ok := e.(*cil.FnConst); ok && !fnAddr[fc.Name] {
				fnAddr[fc.Name] = true
				tab.enum("fa:" + fc.Name).root(fc.Ty)
			}
		})
	}
	for _, f := range prog.Funcs {
		e := tab.enum("fn:" + f.Name)
		forEachFuncType(f, e.root)
	}
	return tab
}

// castsOf enumerates the cast nodes of a function body in WalkFuncExprs
// order; summaries rebind cast sites to IR nodes by this index.
func castsOf(f *cil.Func) []*cil.Cast {
	var out []*cil.Cast
	cil.WalkFuncExprs(f, func(e cil.Expr) {
		if c, ok := e.(*cil.Cast); ok {
			out = append(out, c)
		}
	})
	return out
}

// Op codes for the summary op stream.
const (
	opReg     uint8 = iota // A: occ — regType(occ)
	opBind                 // A: occ — push Lookup(occ) onto the register stack
	opUnify                // A,B: occs — Lookup both; UnionR if both non-nil
	opFlow                 // A,B: occ/reg — FlowR
	opEdge                 // A,B: occ/reg — append constraint edge (Class, Site)
	opArith                // A: occ/reg — MarkArithAt
	opIntCast              // A: occ/reg — MarkIntCastAt
	opRtti                 // A: occ/reg — MarkRttiAt
	opBad                  // A: occ/reg — MarkBad(pos, why=Rule)
	opCast                 // N: cast index; A,B: from/to occs; Class/TileOK/Trusted
)

// Op is one recorded graph mutation. A and B index the summary's Occs
// table, or (when AReg/BReg) the virtual register stack built by opBind.
// Rule and File index the summary's interned string table (-1 = none).
type Op struct {
	Code       uint8
	AReg, BReg bool
	A, B       int32
	Rule       int32
	File       int32
	Line, Col  int32
	Class      uint8
	TileOK     bool
	Trusted    bool
	Site       int32 // cast-site index for opEdge (-1 = plain assignment)
	N          int32 // cast enumeration index for opCast
}

// SumOcc is one occurrence reference: Owner indexes the summary's Owners
// table, Idx is the per-owner enumeration index.
type SumOcc struct {
	Owner int32
	Idx   int32
}

// FuncDep records a cross-function occurrence reference: the summary named
// an occurrence first touched in another function's body, so it is valid
// only while that body is unchanged. (Declaration-owned references need no
// entry: the declaration fingerprint is part of the chunk key.)
type FuncDep struct {
	Fn   string
	Body [32]byte
}

// FuncSummary is the serializable constraint summary of one function.
type FuncSummary struct {
	Func   string
	Owners []string
	Occs   []SumOcc
	Strs   []string
	Ops    []Op
	Deps   []FuncDep
	NSites int32 // number of opCast ops (sanity bound for Site refs)
	NCasts int32 // casts expected in the body's enumeration
}

// recorder captures one function's collection pass as a FuncSummary.
type recorder struct {
	tab     *occTable
	owner   string // "fn:<name>" of the function being recorded
	castN   map[*cil.Cast]int32
	sum     *FuncSummary
	ownerIx map[string]int32
	strIx   map[string]int32
	occIx   map[OccRef]int32
	regOf   map[*qual.Node]int32
	nreg    int32
	siteOp  map[*CastSite]int
	depFns  map[string]bool
	// bad marks the summary unstorable: an operand occurrence could not be
	// named symbolically. Collection itself is unaffected; the function is
	// simply re-collected on every compile.
	bad bool
}

func newRecorder(tab *occTable, f *cil.Func, casts []*cil.Cast) *recorder {
	r := &recorder{
		tab:     tab,
		owner:   "fn:" + f.Name,
		castN:   make(map[*cil.Cast]int32, len(casts)),
		sum:     &FuncSummary{Func: f.Name, NCasts: int32(len(casts))},
		ownerIx: make(map[string]int32),
		strIx:   make(map[string]int32),
		occIx:   make(map[OccRef]int32),
		regOf:   make(map[*qual.Node]int32),
		siteOp:  make(map[*CastSite]int),
		depFns:  make(map[string]bool),
	}
	for i, c := range casts {
		r.castN[c] = int32(i)
	}
	return r
}

func (r *recorder) str(s string) int32 {
	if s == "" {
		return -1
	}
	if ix, ok := r.strIx[s]; ok {
		return ix
	}
	ix := int32(len(r.sum.Strs))
	r.sum.Strs = append(r.sum.Strs, s)
	r.strIx[s] = ix
	return ix
}

func (r *recorder) occ(t *ctypes.Type) int32 {
	ref, ok := r.tab.byType[t]
	if !ok {
		r.bad = true
		return -1
	}
	if strings.HasPrefix(ref.Owner, "fn:") && ref.Owner != r.owner {
		r.depFns[strings.TrimPrefix(ref.Owner, "fn:")] = true
	}
	if ix, ok := r.occIx[ref]; ok {
		return ix
	}
	oix, ok := r.ownerIx[ref.Owner]
	if !ok {
		oix = int32(len(r.sum.Owners))
		r.sum.Owners = append(r.sum.Owners, ref.Owner)
		r.ownerIx[ref.Owner] = oix
	}
	ix := int32(len(r.sum.Occs))
	r.sum.Occs = append(r.sum.Occs, SumOcc{Owner: oix, Idx: ref.Idx})
	r.occIx[ref] = ix
	return ix
}

func (r *recorder) emit(op Op, pos diag.Pos) {
	op.File = r.str(pos.File)
	op.Line, op.Col = int32(pos.Line), int32(pos.Col)
	r.sum.Ops = append(r.sum.Ops, op)
}

// arg builds an occ-or-reg operand for node n looked up from occurrence t.
// If n is already register-bound, the register reference is used (the node
// may be a stale pre-union representative that a fresh Lookup would no
// longer return).
func (r *recorder) arg(n *qual.Node, t *ctypes.Type) (int32, bool) {
	if n != nil {
		if reg, ok := r.regOf[n]; ok {
			return reg, true
		}
	}
	return r.occ(t), false
}

func (r *recorder) reg(t *ctypes.Type) {
	r.emit(Op{Code: opReg, A: r.occ(t), B: -1, Rule: -1, Site: -1}, diag.Pos{})
}

// bind records a register binding for node n (the Lookup result of t at
// this sequence point). Re-binding an already bound node is a no-op: the
// existing register resolves to the same node at replay.
func (r *recorder) bind(n *qual.Node, t *ctypes.Type) {
	if n == nil {
		return
	}
	if _, ok := r.regOf[n]; ok {
		return
	}
	r.regOf[n] = r.nreg
	r.nreg++
	r.emit(Op{Code: opBind, A: r.occ(t), B: -1, Rule: -1, Site: -1}, diag.Pos{})
}

func (r *recorder) unify(a, b *ctypes.Type, rule string, pos diag.Pos) {
	r.emit(Op{Code: opUnify, A: r.occ(a), B: r.occ(b), Rule: r.str(rule), Site: -1}, pos)
}

func (r *recorder) flow(na, nb *qual.Node, ta, tb *ctypes.Type, rule string, pos diag.Pos) {
	a, areg := r.arg(na, ta)
	b, breg := r.arg(nb, tb)
	r.emit(Op{Code: opFlow, A: a, AReg: areg, B: b, BReg: breg, Rule: r.str(rule), Site: -1}, pos)
}

func (r *recorder) edge(na, nb *qual.Node, ta, tb *ctypes.Type, class edgeClass, site *CastSite) {
	a, areg := r.arg(na, ta)
	b, breg := r.arg(nb, tb)
	siteIx := int32(-1)
	if site != nil {
		if opIx, ok := r.siteOp[site]; ok {
			siteIx = r.sum.Ops[opIx].Site // site index == order of opCast emission
		} else {
			r.bad = true
		}
	}
	r.emit(Op{Code: opEdge, A: a, AReg: areg, B: b, BReg: breg, Rule: -1, Class: uint8(class), Site: siteIx}, diag.Pos{})
}

func (r *recorder) mark(code uint8, n *qual.Node, t *ctypes.Type, pos diag.Pos, why string) {
	a, areg := r.arg(n, t)
	r.emit(Op{Code: code, A: a, AReg: areg, B: -1, Rule: r.str(why), Site: -1}, pos)
}

// cast records the creation of a cast site; class/tile/trusted fields are
// patched in place by patchCast once classification completes.
func (r *recorder) cast(c *cil.Cast, site *CastSite, from, to *ctypes.Type) {
	n, ok := r.castN[c]
	if !ok {
		r.bad = true
		return
	}
	r.siteOp[site] = len(r.sum.Ops)
	// Site carries the site's own sequence index so opEdge can reference it.
	siteIx := r.sum.NSites
	r.sum.NSites++
	r.emit(Op{Code: opCast, A: r.occ(from), B: r.occ(to), Rule: -1, N: n, Site: siteIx}, site.Pos)
}

func (r *recorder) patchCast(site *CastSite) {
	ix, ok := r.siteOp[site]
	if !ok {
		return
	}
	op := &r.sum.Ops[ix]
	op.Class = uint8(site.Class)
	op.TileOK = site.TileOK
	op.Trusted = site.Trusted
}

// finish seals the summary, resolving cross-function occurrence deps
// against the current body fingerprints.
func (r *recorder) finish(bodies map[string][32]byte) *FuncSummary {
	for fn := range r.depFns {
		body, ok := bodies[fn]
		if !ok {
			r.bad = true
			return r.sum
		}
		r.sum.Deps = append(r.sum.Deps, FuncDep{Fn: fn, Body: body})
	}
	// Deterministic dep order (map iteration is not).
	for i := 1; i < len(r.sum.Deps); i++ {
		for j := i; j > 0 && r.sum.Deps[j].Fn < r.sum.Deps[j-1].Fn; j-- {
			r.sum.Deps[j], r.sum.Deps[j-1] = r.sum.Deps[j-1], r.sum.Deps[j]
		}
	}
	return r.sum
}
